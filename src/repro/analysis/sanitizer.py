"""Shadow-oracle memory-ordering sanitizer.

:class:`MemoryOrderSanitizer` wraps any dependence-checking scheme behind
the same hook protocol the pipeline already speaks
(:class:`repro.core.schemes.base.CheckScheme`), so attaching it changes
*nothing* about the simulated machine: every hook delegates to the wrapped
scheme and the simulation result stays bit-identical (pinned by
``tests/test_sanitizer_matrix.py``).  Around each delegation it maintains
an independent shadow associative LQ/SQ (:mod:`repro.analysis.shadow`) and
cross-checks the scheme's decisions against that oracle:

* at **store resolution** it flags every load that truly issued
  prematurely past the store, and classifies any execution-time replay the
  scheme ordered as true or false;
* at **load commit** it verifies that a flagged load does not retire
  un-replayed (a *missed violation* — the unsoundness DMDC's age filter
  must never exhibit) and classifies commit-time replays;
* invariant probes (:mod:`repro.analysis.probes`) check YLA soundness /
  monotonicity / rollback exactness, ``end_check`` window consistency, and
  ROB/LSQ age ordering on every event.

Attach with :func:`attach_sanitizer` — which also registers the sanitizer
on the processor's hook seam, disabling the event-horizon cycle skipper
exactly like a tracer does (hooks must never run under skipped cycles).
"""

from typing import List, Optional

from repro.analysis.probes import AgeOrderProbe, ProbeSet, WindowProbe, YlaProbe
from repro.analysis.shadow import ShadowLSQ
from repro.backend.dyninst import DynInstr
from repro.core.schemes.base import CommitDecision
from repro.errors import SanitizerError
from repro.sim.config import SchemeConfig, scheme_matrix

#: The canonical scheme matrix the correctness suites sweep: one label per
#: scheme family the simulator implements (the fast-path equivalence
#: matrix and the sanitizer matrix must cover the same nine points).
#: Built through the one label codec (:meth:`SchemeConfig.from_label`),
#: so labels here, in ``repro bench``, and on the CLI cannot diverge.
SCHEME_MATRIX = scheme_matrix()

#: Cap on stored per-finding detail strings (counts are never capped).
MAX_DETAILS = 16


class SanitizerReport:
    """Aggregated findings of one sanitized run."""

    def __init__(self, scheme: str):
        self.scheme = scheme
        #: true premature loads the shadow oracle flagged at store resolve
        self.oracle_violations = 0
        #: flagged loads that retired with no replay — unsoundness
        self.missed_violations = 0
        #: replays covering at least one flagged load
        self.true_replays = 0
        #: replays covering no flagged load (the cost of approximation)
        self.false_replays = 0
        #: replays triggered by the load-issue hook (coherence ordering)
        self.coherence_replays = 0
        #: shadow oracle vs. built-in ground-truth flag disagreements
        self.oracle_divergence = 0
        #: invariant-probe failures (messages bounded by MAX_DETAILS)
        self.probe_failures: List[str] = []
        self.probe_failure_count = 0
        self.missed_details: List[str] = []
        self.probe_checks = 0
        self.events_checked = 0

    @property
    def clean(self) -> bool:
        return self.missed_violations == 0 and self.probe_failure_count == 0

    def as_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "oracle_violations": self.oracle_violations,
            "missed_violations": self.missed_violations,
            "true_replays": self.true_replays,
            "false_replays": self.false_replays,
            "coherence_replays": self.coherence_replays,
            "oracle_divergence": self.oracle_divergence,
            "probe_failures": self.probe_failure_count,
            "probe_checks": self.probe_checks,
            "events_checked": self.events_checked,
            "clean": self.clean,
            "details": self.missed_details + self.probe_failures,
        }

    def format(self) -> str:
        verdict = "CLEAN" if self.clean else "DEFECTIVE"
        lines = [
            f"sanitizer[{self.scheme}]: {verdict} — "
            f"{self.oracle_violations} true violations, "
            f"{self.missed_violations} missed, "
            f"{self.true_replays} true / {self.false_replays} false replays, "
            f"{self.probe_failure_count} probe failures "
            f"({self.probe_checks} probe checks, "
            f"{self.events_checked} events)"
        ]
        lines.extend(f"  missed: {d}" for d in self.missed_details)
        lines.extend(f"  probe:  {d}" for d in self.probe_failures)
        return "\n".join(lines)


class MemoryOrderSanitizer:
    """Scheme wrapper: delegate every hook, cross-check every decision."""

    def __init__(self, inner, strict: bool = False):
        self.inner = inner
        self.strict = strict
        self.shadow = ShadowLSQ()
        self.report = SanitizerReport(inner.name)
        ylas = []
        for label in ("yla", "yla_line"):
            yla = getattr(inner, label, None)
            if yla is not None:
                ylas.append(YlaProbe(yla, label))
        window = WindowProbe(inner) if hasattr(inner, "end_check") else None
        self.probes = ProbeSet(AgeOrderProbe(), ylas, window)

    # -- defect recording -------------------------------------------------
    def _missed(self, message: str) -> None:
        self.report.missed_violations += 1
        if len(self.report.missed_details) < MAX_DETAILS:
            self.report.missed_details.append(message)
        if self.strict:
            raise SanitizerError(f"[{self.inner.name}] {message}")

    def _probe_failed(self, message: Optional[str]) -> None:
        if message is None:
            return
        self.report.probe_failure_count += 1
        if len(self.report.probe_failures) < MAX_DETAILS:
            self.report.probe_failures.append(message)
        if self.strict:
            raise SanitizerError(f"[{self.inner.name}] {message}")

    # -- execution-time hooks ---------------------------------------------
    def on_load_issue(self, load: DynInstr, cycle: int) -> Optional[DynInstr]:
        self.report.events_checked += 1
        self.shadow.load_issued(load, cycle)
        victim = self.inner.on_load_issue(load, cycle)
        for probe in self.probes.ylas:
            self._probe_failed(probe.after_load_issue(load.addr, load.seq))
        if victim is not None:
            # Load-load coherence ordering replay; the pipeline squashes
            # from the victim, which on_squash mirrors into the shadow.
            self.report.coherence_replays += 1
        return victim

    def on_wrongpath_load(self, age: int, addr: int) -> None:
        self.inner.on_wrongpath_load(age, addr)
        # Wrong-path loads only push YLA registers forward (conservative);
        # monotonicity must still hold.
        for probe in self.probes.ylas:
            self._probe_failed(probe.after_load_issue(addr, age))

    def on_store_resolve(self, store: DynInstr, cycle: int) -> Optional[DynInstr]:
        self.report.events_checked += 1
        flagged = self.shadow.store_resolved(store, cycle)
        self.report.oracle_violations += len(flagged)
        victim = self.inner.on_store_resolve(store, cycle)
        if victim is not None:
            # Execution-time replay: the pipeline squashes from the victim,
            # covering every younger in-flight load.
            if self.shadow.pending_violation_at_or_after(victim.seq):
                self.report.true_replays += 1
            else:
                self.report.false_replays += 1
        return victim

    # -- commit-time hook --------------------------------------------------
    def on_commit(self, instr: DynInstr, cycle: int) -> CommitDecision:
        self.report.events_checked += 1
        self._probe_failed(self.probes.age.on_commit(instr))
        window = self.probes.window
        if window is not None:
            window.before_commit()
        decision = self.inner.on_commit(instr, cycle)
        replayed = decision == CommitDecision.REPLAY
        if window is not None:
            self._probe_failed(window.after_commit(instr, replayed))
        if instr.is_load:
            rec = self.shadow.loads.get(instr.seq)
            shadow_violated = rec is not None and rec.violated_by >= 0
            builtin_violated = instr.true_violation_store >= 0
            if shadow_violated != builtin_violated:
                self.report.oracle_divergence += 1
            if replayed:
                if shadow_violated:
                    self.report.true_replays += 1
                else:
                    self.report.false_replays += 1
                # The squash removes the load from the shadow via on_squash.
            else:
                if shadow_violated:
                    self._missed(
                        f"load seq={instr.seq} addr={instr.addr:#x} retired "
                        f"despite premature issue past store "
                        f"seq={rec.violated_by} under {self.inner.name}"
                    )
                self.shadow.load_committed(instr.seq)
        elif instr.is_store and not replayed:
            self.shadow.store_committed(instr.seq)
        return decision

    # -- control-flow repair -----------------------------------------------
    def on_recovery(self, last_kept_seq: int) -> None:
        self.inner.on_recovery(last_kept_seq)
        for probe in self.probes.ylas:
            self._probe_failed(probe.after_rollback(last_kept_seq))

    def on_squash(self, last_kept_seq: int, squashed_loads: List[DynInstr]) -> None:
        self.inner.on_squash(last_kept_seq, squashed_loads)
        self.shadow.squash_younger(last_kept_seq)
        for probe in self.probes.ylas:
            self._probe_failed(probe.after_rollback(last_kept_seq))

    # -- coherence ----------------------------------------------------------
    def on_invalidation(self, line_addr: int, line_bytes: int, cycle: int,
                        oldest_inflight_seq: int) -> None:
        self.inner.on_invalidation(line_addr, line_bytes, cycle,
                                   oldest_inflight_seq)

    # -- pass-through observability -----------------------------------------
    @property
    def checking_active(self) -> bool:
        return self.inner.checking_active

    def finalize(self, cycle: int) -> None:
        self.inner.finalize(cycle)

    def collect(self) -> None:
        self.inner.collect()
        self.report.probe_checks = self.probes.checks

    def __getattr__(self, attr):
        # Everything else (stats, window histograms, name, energy-model
        # class attributes) reads through to the wrapped scheme, so results
        # built from a sanitized run are indistinguishable from plain runs.
        if attr == "inner":
            raise AttributeError(attr)
        return getattr(self.inner, attr)


def run_sanitized(config, trace, max_instructions=None, seed: int = 1,
                  strict: bool = False, prewarm: bool = True):
    """Run ``trace`` on ``config`` with a sanitizer attached.

    Mirrors :func:`repro.sim.runner.run_trace` and returns
    ``(SimulationResult, SanitizerReport)``.  The result is bit-identical
    to an unsanitized run of the same configuration (the sanitizer keeps
    its findings out of the scheme's stats), so the pair can be compared
    directly against a plain run.
    """
    from repro.sim.processor import Processor

    processor = Processor(config, trace, seed=seed)
    sanitizer = attach_sanitizer(processor, strict=strict)
    if prewarm:
        processor.prewarm()
    budget = max_instructions if max_instructions is not None else len(trace)
    result = processor.run(budget)
    return result, sanitizer.report


def attach_sanitizer(processor, strict: bool = False) -> MemoryOrderSanitizer:
    """Wrap ``processor``'s scheme in a sanitizer before the run starts.

    Also registers the sanitizer on the processor's hook seam
    (:meth:`repro.sim.processor.Processor.attach_hook`), which disables the
    event-horizon cycle skipper for the run — the same rule tracers follow.
    """
    if processor.cycle != 0:
        raise SanitizerError("attach the sanitizer before the first cycle")
    sanitizer = MemoryOrderSanitizer(processor.scheme, strict=strict)
    processor.scheme = sanitizer
    processor.attach_hook(sanitizer)
    return sanitizer
