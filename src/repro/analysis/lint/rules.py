"""Rule catalogue for ``repro check --static``.

Every rule encodes a discipline this repository depends on for
correctness of the reproduction (determinism, immutability, protocol
conformance) or for the fast-path performance contract established by the
cycle-loop optimisation work (hot-path allocation and counter rules).
Rules carry a stable ID; suppress a finding on its line with
``# repro: noqa[ID]`` (see :mod:`repro.analysis.lint.engine`).

==========  ==========================================================
ID          discipline
==========  ==========================================================
REPRO001    no wall-clock reads inside ``sim/``/``lsq/``/``core/``
REPRO002    no ``random`` module inside ``sim/``/``lsq/``/``core/``
            (use :class:`repro.utils.rng.DeterministicRng`)
REPRO003    no iteration over ``set``s inside the deterministic zone
            (iteration order is not reproducible across processes)
REPRO004    no string-keyed ``CounterSet.bump`` in hot-path functions
            (use :class:`repro.stats.counters.HotCounters` slots)
REPRO005    no growable-collection allocation in hot-path functions
            (comprehensions, ``list()``/``dict()``/``set()``, empty
            displays, lambdas)
REPRO006    no post-construction mutation of ``NamedTuple`` / frozen
            dataclass results
REPRO007    scheme classes must conform to the scheme protocol
            (hook names and arities from ``PROTOCOL_HOOKS``)
==========  ==========================================================
"""

import ast
import re
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.lint.engine import LintViolation, SourceFile
from repro.core.schemes.base import PROTOCOL_HOOKS

#: Directories (under the ``repro`` package) whose behaviour must be a
#: pure function of (trace, config, seed): simulated state may never read
#: wall clocks, ambient randomness, or unordered-container iteration.
_ZONE_RE = re.compile(r"repro/(sim|lsq|core)/")

#: Functions on the simulator's per-cycle/per-event hot paths, where the
#: cycle-loop fast-path work banned string-keyed counters and growable
#: allocations.  Keyed by path suffix -> set of qualified names.
HOT_FUNCTIONS: Dict[str, Set[str]] = {
    "repro/sim/processor.py": {
        "Processor.step",
        "Processor._maybe_fast_forward",
        "Processor._dispatch_stall_slot",
        "Processor._schedule_completion",
        "Processor._schedule_retry",
        "Processor._stage_commit",
        "Processor._retire",
        "Processor._stage_complete",
        "Processor._wake_consumers",
        "Processor._stage_issue",
        "Processor._free_iq_entry",
        "Processor._issue_alu",
        "Processor._issue_store",
        "Processor._ground_truth_store_resolve",
        "Processor._try_issue_load",
        "Processor._stage_dispatch",
        "Processor._stage_fetch",
    },
    "repro/lsq/queues.py": {
        "StoreQueue.search_for_forwarding",
        "LoadQueue.search_younger_issued",
        "sq_forward_search_soa",
        "sq_has_unresolved_soa",
        "lq_violation_search_soa",
    },
    # The batched SoA kernel: its fused cycle loop and squash path are
    # the hottest code in the repository.  Construction (``__init__``,
    # ``TraceSoA``) is setup and may allocate freely.
    "repro/sim/soa.py": {
        "SoaKernel.run",
        "SoaKernel._squash_from",
        "SoaKernel._free_iq_if_held",
    },
}

_WALLCLOCK_TIME_ATTRS = {
    "time", "perf_counter", "monotonic", "process_time",
    "time_ns", "perf_counter_ns", "monotonic_ns",
}
_WALLCLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}


def _in_zone(path: str) -> bool:
    return _ZONE_RE.search(path) is not None


def _qualname_index(tree: ast.AST) -> List[Tuple[str, ast.AST]]:
    """(qualified name, function node) for every function in the module."""
    out: List[Tuple[str, ast.AST]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{prefix}{child.name}"
                out.append((name, child))
                visit(child, f"{name}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return out


class Rule:
    """Base rule: a stable ID, a one-line summary, scan/check hooks."""

    rule_id = "REPRO000"
    summary = ""

    def __init__(self):
        self.context: dict = {}

    def scan(self, file: SourceFile, context: dict) -> None:
        """Phase 1: accumulate project-wide facts (optional)."""

    def check(self, file: SourceFile, context: dict) -> Iterator[LintViolation]:
        """Phase 2: yield findings for one file."""
        return iter(())

    def violation(self, file: SourceFile, node: ast.AST, message: str) -> LintViolation:
        return LintViolation(file.path, getattr(node, "lineno", 1),
                             self.rule_id, message)


class NoWallClockRule(Rule):
    """No wall-clock reads inside the deterministic zone.

    Simulated behaviour must be a pure function of (trace, config, seed);
    a ``time.time()``/``perf_counter()``/``datetime.now()`` call inside
    ``sim/``, ``lsq/`` or ``core/`` makes runs unreproducible and breaks
    the content-addressed result cache.  Measurement-only uses (timing a
    run for the perf harness) are legitimate — suppress those lines with
    ``# repro: noqa[REPRO001]``.
    """

    rule_id = "REPRO001"
    summary = "no wall-clock reads in sim/, lsq/, core/"

    def check(self, file: SourceFile, context: dict) -> Iterator[LintViolation]:
        if not _in_zone(file.path):
            return
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                base, attr = node.value.id, node.attr
                if base == "time" and attr in _WALLCLOCK_TIME_ATTRS:
                    yield self.violation(file, node, f"wall-clock read time.{attr}")
                elif base in ("datetime", "date") and attr in _WALLCLOCK_DATETIME_ATTRS:
                    yield self.violation(file, node, f"wall-clock read {base}.{attr}")
            elif isinstance(node, ast.ImportFrom):
                if node.module in ("time", "datetime"):
                    for alias in node.names:
                        if alias.name in (_WALLCLOCK_TIME_ATTRS
                                          | _WALLCLOCK_DATETIME_ATTRS):
                            yield self.violation(
                                file, node,
                                f"imports wall-clock {node.module}.{alias.name}")


class NoAmbientRandomRule(Rule):
    """No ambient randomness inside the deterministic zone.

    All stochastic model behaviour must flow through
    :class:`repro.utils.rng.DeterministicRng` (seeded, stream-split); the
    global ``random`` module (or ``numpy.random``) is shared mutable state
    whose draws depend on import order and other call sites.
    """

    rule_id = "REPRO002"
    summary = "no random module in sim/, lsq/, core/ (use DeterministicRng)"

    def check(self, file: SourceFile, context: dict) -> Iterator[LintViolation]:
        if not _in_zone(file.path):
            return
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("numpy.random"):
                        yield self.violation(file, node,
                                             f"imports ambient RNG {alias.name!r}")
            elif isinstance(node, ast.ImportFrom):
                if node.module and (node.module == "random"
                                    or node.module.startswith("numpy.random")):
                    yield self.violation(file, node,
                                         f"imports from ambient RNG {node.module!r}")
            elif (isinstance(node, ast.Attribute)
                  and isinstance(node.value, ast.Name)
                  and node.value.id == "random"):
                yield self.violation(file, node,
                                     f"ambient RNG call random.{node.attr}")


class NoSetIterationRule(Rule):
    """No iteration over sets inside the deterministic zone.

    Set iteration order depends on insertion history and (for str keys)
    per-process hash randomisation, so a loop over a set can reorder
    replays, counter folds, or event scheduling between runs.  Membership
    tests are fine; iterate a sorted copy or an insertion-ordered dict
    instead.
    """

    rule_id = "REPRO003"
    summary = "no set iteration in sim/, lsq/, core/"

    def _set_typed(self, file: SourceFile) -> Tuple[Set[str], Set[str]]:
        """Names (locals and ``self.x`` attrs) bound to sets in this file."""
        names: Set[str] = set()
        attrs: Set[str] = set()

        def record(target: ast.AST) -> None:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif (isinstance(target, ast.Attribute)
                  and isinstance(target.value, ast.Name)
                  and target.value.id == "self"):
                attrs.add(target.attr)

        def is_set_expr(value) -> bool:
            if isinstance(value, (ast.Set, ast.SetComp)):
                return True
            return (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in ("set", "frozenset"))

        for node in ast.walk(file.tree):
            if isinstance(node, ast.Assign) and is_set_expr(node.value):
                for target in node.targets:
                    record(target)
            elif isinstance(node, ast.AnnAssign):
                text = ast.dump(node.annotation)
                if "'Set'" in text or "'set'" in text or "'FrozenSet'" in text:
                    record(node.target)
                elif node.value is not None and is_set_expr(node.value):
                    record(node.target)
        return names, attrs

    def check(self, file: SourceFile, context: dict) -> Iterator[LintViolation]:
        if not _in_zone(file.path):
            return
        names, attrs = self._set_typed(file)

        def is_set_iter(expr) -> bool:
            if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
                    and expr.func.id in ("set", "frozenset")):
                return True
            if isinstance(expr, ast.Name):
                return expr.id in names
            if (isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"):
                return expr.attr in attrs
            return False

        for node in ast.walk(file.tree):
            iters = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for expr in iters:
                if is_set_iter(expr):
                    yield self.violation(
                        file, expr,
                        "iterates a set (nondeterministic order); "
                        "iterate sorted(...) or an ordered dict")


class NoHotPathBumpRule(Rule):
    """No string-keyed counter bumps in hot-path functions.

    ``CounterSet.bump`` hashes a string and touches a defaultdict on every
    call; on per-cycle/per-event paths that cost is measurable.  Hot paths
    increment pre-bound :class:`repro.stats.counters.HotCounters` slots and
    fold them into the ``CounterSet`` once, at result-build time.
    """

    rule_id = "REPRO004"
    summary = "no CounterSet.bump in hot-path functions (use HotCounters)"

    def check(self, file: SourceFile, context: dict) -> Iterator[LintViolation]:
        hot = _hot_functions_for(file.path)
        if not hot:
            return
        for qualname, func in _qualname_index(file.tree):
            if qualname not in hot:
                continue
            for node in ast.walk(func):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "bump"):
                    yield self.violation(
                        file, node,
                        f"string-keyed bump() inside hot function {qualname}; "
                        f"use a HotCounters slot")


class NoHotPathAllocationRule(Rule):
    """No growable-collection allocation in hot-path functions.

    Comprehensions, ``list()``/``dict()``/``set()`` calls, empty display
    literals and lambdas allocate on every invocation of the function;
    the cycle-loop fast path exists because those allocations dominated
    profiles.  Fixed-size non-empty displays (e.g. a two-element tuple
    result) are allowed.  A deliberate, justified allocation gets a
    ``# repro: noqa[REPRO005]`` with a comment saying why.
    """

    rule_id = "REPRO005"
    summary = "no growable allocation in hot-path functions"

    def check(self, file: SourceFile, context: dict) -> Iterator[LintViolation]:
        hot = _hot_functions_for(file.path)
        if not hot:
            return
        for qualname, func in _qualname_index(file.tree):
            if qualname not in hot:
                continue
            for node in ast.walk(func):
                label = None
                if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                     ast.GeneratorExp)):
                    label = "comprehension"
                elif isinstance(node, ast.Lambda):
                    label = "lambda"
                elif (isinstance(node, ast.Call)
                      and isinstance(node.func, ast.Name)
                      and node.func.id in ("list", "dict", "set", "frozenset")):
                    label = f"{node.func.id}() call"
                elif isinstance(node, ast.List) and not node.elts:
                    label = "empty list display"
                elif isinstance(node, ast.Dict) and not node.keys:
                    label = "empty dict display"
                if label is not None:
                    yield self.violation(
                        file, node,
                        f"{label} allocates inside hot function {qualname}")


class NoFrozenMutationRule(Rule):
    """No post-construction mutation of NamedTuple / frozen dataclass results.

    Result records (:class:`repro.lsq.queues.ForwardResult` and friends)
    are immutable by contract; CPython NamedTuples raise on attribute
    assignment only at runtime, and a mutation that "works" (e.g. via a
    shadowing attribute) silently forks the record from its consumers.
    Applies repo-wide: the scan phase collects every NamedTuple subclass
    and ``@dataclass(frozen=True)`` defined in the linted file set.
    """

    rule_id = "REPRO006"
    summary = "no mutation of NamedTuple/frozen dataclass instances"

    def scan(self, file: SourceFile, context: dict) -> None:
        frozen = context.setdefault("frozen_classes", set())
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for base in node.bases:
                name = base.attr if isinstance(base, ast.Attribute) else (
                    base.id if isinstance(base, ast.Name) else "")
                if name == "NamedTuple":
                    frozen.add(node.name)
            for deco in node.decorator_list:
                if (isinstance(deco, ast.Call)
                        and isinstance(deco.func, ast.Name)
                        and deco.func.id == "dataclass"):
                    for kw in deco.keywords:
                        if (kw.arg == "frozen"
                                and isinstance(kw.value, ast.Constant)
                                and kw.value.value is True):
                            frozen.add(node.name)

    def check(self, file: SourceFile, context: dict) -> Iterator[LintViolation]:
        frozen = context.get("frozen_classes", set())
        if not frozen:
            return
        for qualname, func in _qualname_index(file.tree):
            # Intra-function dataflow: names assigned from a frozen-class
            # constructor call, then stored-to through an attribute.
            frozen_locals: Set[str] = set()
            for node in ast.walk(func):
                if isinstance(node, ast.Assign):
                    value = node.value
                    if (isinstance(value, ast.Call)
                            and isinstance(value.func, ast.Name)
                            and value.func.id in frozen):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                frozen_locals.add(target.id)
                    else:
                        # Rebinding a tracked name to anything else clears it.
                        for target in node.targets:
                            if (isinstance(target, ast.Name)
                                    and target.id in frozen_locals):
                                frozen_locals.discard(target.id)
                targets = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in frozen_locals):
                        yield self.violation(
                            file, target,
                            f"mutates frozen result "
                            f"{target.value.id}.{target.attr} in {qualname}")
            # Self-mutation inside a frozen class's own methods.
            parts = qualname.split(".")
            if len(parts) >= 2 and parts[-2] in frozen and parts[-1] != "__new__":
                for node in ast.walk(func):
                    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                        targets = (node.targets if isinstance(node, ast.Assign)
                                   else [node.target])
                        for target in targets:
                            if (isinstance(target, ast.Attribute)
                                    and isinstance(target.value, ast.Name)
                                    and target.value.id == "self"):
                                yield self.violation(
                                    file, target,
                                    f"frozen class {parts[-2]} mutates "
                                    f"self.{target.attr} in {parts[-1]}")


class SchemeProtocolRule(Rule):
    """Scheme classes must conform to the scheme protocol.

    A dependence-checking scheme interacts with the pipeline exclusively
    through the hooks in
    :data:`repro.core.schemes.base.PROTOCOL_HOOKS`.  A subclass defining a
    hook-shaped method the pipeline does not know (``on_comit``, an extra
    required parameter) is silently never called — the scheme "works" but
    checks nothing.  Applies to classes in ``core/schemes/`` whose bases
    look like scheme classes.
    """

    rule_id = "REPRO007"
    summary = "scheme classes must implement the scheme protocol exactly"

    def check(self, file: SourceFile, context: dict) -> Iterator[LintViolation]:
        if "repro/core/schemes/" not in file.path:
            return
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = [b.id for b in node.bases if isinstance(b, ast.Name)]
            is_scheme = node.name == "CheckScheme" or any(
                name == "CheckScheme" or name.endswith("Scheme")
                for name in base_names)
            if not is_scheme:
                continue
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                name = item.name
                if name.startswith("on_") and name not in PROTOCOL_HOOKS:
                    yield self.violation(
                        file, item,
                        f"{node.name}.{name} looks like a pipeline hook but "
                        f"is not in the scheme protocol (typo?)")
                    continue
                if name not in PROTOCOL_HOOKS:
                    continue
                args = item.args
                positional = len(args.posonlyargs) + len(args.args) - 1
                required = positional - len(args.defaults)
                expected = PROTOCOL_HOOKS[name]
                if required > expected or positional < expected:
                    yield self.violation(
                        file, item,
                        f"{node.name}.{name} takes {positional} args "
                        f"({required} required); the pipeline calls it "
                        f"with {expected}")


def _hot_functions_for(path: str) -> Set[str]:
    for suffix, names in HOT_FUNCTIONS.items():
        if path.endswith(suffix):
            return names
    return set()


RULES = (
    NoWallClockRule(),
    NoAmbientRandomRule(),
    NoSetIterationRule(),
    NoHotPathBumpRule(),
    NoHotPathAllocationRule(),
    NoFrozenMutationRule(),
    SchemeProtocolRule(),
)


def rule_catalogue() -> str:
    """Human-readable rule listing for ``repro check --list-rules``."""
    lines = []
    for rule in RULES:
        lines.append(f"{rule.rule_id}  {rule.summary}")
        doc = (rule.__doc__ or "").strip().splitlines()
        for line in doc[1:]:
            lines.append(f"    {line.strip()}")
        lines.append("")
    return "\n".join(lines).rstrip()
