"""Repo-specific AST lint pass (``repro check --static``).

The rule catalogue (:mod:`repro.analysis.lint.rules`) encodes the coding
disciplines the simulator's correctness and performance story depend on —
determinism inside ``sim/``/``lsq/``/``core/``, hot-path allocation and
counter discipline, frozen-result immutability, and scheme-protocol
conformance.  The engine (:mod:`repro.analysis.lint.engine`) walks files,
runs every rule, and honours ``# repro: noqa[RULE]`` suppressions.
"""

from repro.analysis.lint.engine import (
    LintViolation,
    format_violations,
    lint_paths,
    lint_source,
)
from repro.analysis.lint.rules import RULES, rule_catalogue

__all__ = [
    "LintViolation",
    "RULES",
    "format_violations",
    "lint_paths",
    "lint_source",
    "rule_catalogue",
]
