"""Lint engine: file walking, suppression parsing, rule dispatch.

Linting is two-phase so rules can use whole-project facts (e.g. the set of
frozen result classes) when judging a single file:

1. every file is parsed into a :class:`SourceFile`; each rule's ``scan``
   hook observes all of them and accumulates project-wide context;
2. each rule's ``check`` hook yields :class:`LintViolation` findings per
   file, which the engine filters through ``# repro: noqa`` suppressions.

Suppression syntax, on the offending line::

    something_flagged()  # repro: noqa[REPRO001]
    something_flagged()  # repro: noqa[REPRO001,REPRO005]
    something_flagged()  # repro: noqa

The bare form suppresses every rule on that line; prefer the targeted
form so unrelated regressions on the same line still surface.
"""

import ast
import os
import re
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Tuple

#: ``# repro: noqa`` / ``# repro: noqa[REPRO001,REPRO002]``
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")


class LintViolation(NamedTuple):
    """One finding: where, which rule, and what went wrong."""

    path: str
    line: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"


class SourceFile:
    """A parsed source file plus its suppression map."""

    def __init__(self, path: str, source: str):
        self.path = path.replace(os.sep, "/")
        self.source = source
        self.tree = ast.parse(source, filename=path)
        #: line -> suppressed rule ids (``None`` means "all rules").
        self.noqa: Dict[int, Optional[FrozenSet[str]]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _NOQA_RE.search(line)
            if match:
                ids = match.group(1)
                self.noqa[lineno] = (
                    frozenset(p.strip() for p in ids.split(",") if p.strip())
                    if ids else None
                )

    def suppressed(self, line: int, rule_id: str) -> bool:
        if line not in self.noqa:
            return False
        ids = self.noqa[line]
        return ids is None or rule_id in ids


def _iter_python_files(paths: Iterable[str]) -> List[str]:
    out = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("__pycache__", ".git"))
                out.extend(os.path.join(root, f) for f in sorted(files)
                           if f.endswith(".py"))
        elif path.endswith(".py"):
            out.append(path)
    return out


def _run(files: List[SourceFile], rules) -> List[LintViolation]:
    from repro.analysis.lint.rules import RULES
    active = list(RULES if rules is None else rules)
    for rule in active:
        context = {}
        for file in files:
            rule.scan(file, context)
        rule.context = context
    violations: List[LintViolation] = []
    for file in files:
        for rule in active:
            for violation in rule.check(file, rule.context):
                if not file.suppressed(violation.line, violation.rule_id):
                    violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.rule_id))
    return violations


def lint_paths(paths: Iterable[str], rules=None) -> List[LintViolation]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    files = []
    for path in _iter_python_files(paths):
        with open(path, encoding="utf-8") as fh:
            files.append(SourceFile(path, fh.read()))
    return _run(files, rules)


def lint_source(source: str, path: str = "src/repro/sim/snippet.py",
                rules=None) -> List[LintViolation]:
    """Lint one in-memory snippet as if it lived at ``path``.

    The path decides which rules apply (deterministic zone, hot-function
    catalogue, scheme modules), so tests can aim a snippet at any rule.
    """
    return _run([SourceFile(path, source)], rules)


def format_violations(violations: List[LintViolation]) -> str:
    if not violations:
        return "repro check --static: clean"
    lines = [v.format() for v in violations]
    lines.append(f"{len(violations)} violation(s)")
    return "\n".join(lines)
