"""Lint engine: file walking, suppression parsing, rule dispatch.

Linting is two-phase so rules can use whole-project facts (e.g. the set of
frozen result classes) when judging a single file:

1. every file is parsed into a :class:`SourceFile`; each rule's ``scan``
   hook observes all of them and accumulates project-wide context;
2. each rule's ``check`` hook yields :class:`LintViolation` findings per
   file, which the engine filters through ``# repro: noqa`` suppressions.

Suppression syntax, on the offending statement::

    something_flagged()  # repro: noqa[REPRO001]
    something_flagged()  # repro: noqa[REPRO001,REPRO005]
    something_flagged()  # repro: noqa

The bare form suppresses every rule; prefer the targeted form so
unrelated regressions on the same statement still surface.  A
suppression anywhere on a multi-line statement covers the whole
statement — a violation reported on a continuation line is silenced by
a ``noqa`` on the opening line (and vice versa).  Only real comments
count: the marker inside a string literal is inert.
"""

import ast
import io
import os
import re
import tokenize
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Tuple

#: ``# repro: noqa`` / ``# repro: noqa[REPRO001,REPRO002]``
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")


class LintViolation(NamedTuple):
    """One finding: where, which rule, and what went wrong."""

    path: str
    line: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"


class SourceFile:
    """A parsed source file plus its suppression map."""

    def __init__(self, path: str, source: str):
        self.path = path.replace(os.sep, "/")
        self.source = source
        self.tree = ast.parse(source, filename=path)
        #: line -> suppressed rule ids (``None`` means "all rules").
        #: Populated from COMMENT tokens only, so the marker inside a
        #: string literal never suppresses anything.
        self.noqa: Dict[int, Optional[FrozenSet[str]]] = {}
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match:
                ids = match.group(1)
                self.noqa[token.start[0]] = (
                    frozenset(p.strip() for p in ids.split(",") if p.strip())
                    if ids else None
                )
        #: line -> (first, last) line of the smallest simple statement
        #: covering it — a suppression anywhere in that span silences
        #: violations reported anywhere else in it.  Compound statements
        #: contribute their header only (their bodies' own statements
        #: cover the rest), so a ``noqa`` on a ``with``/``if`` line does
        #: not blanket the whole block.
        self._stmt_span: Dict[int, Tuple[int, int]] = {}
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt) or node.end_lineno is None:
                continue
            body = getattr(node, "body", None)
            if isinstance(body, list) and body:
                last = max(node.lineno, body[0].lineno - 1)
            else:
                last = node.end_lineno
            for lineno in range(node.lineno, last + 1):
                span = self._stmt_span.get(lineno)
                # Smallest enclosing statement wins (walk order is not
                # guaranteed innermost-last, so compare span widths).
                if span is None or last - node.lineno < span[1] - span[0]:
                    self._stmt_span[lineno] = (node.lineno, last)

    def suppressed(self, line: int, rule_id: str) -> bool:
        first, last = self._stmt_span.get(line, (line, line))
        for lineno in range(first, last + 1):
            if lineno in self.noqa:
                ids = self.noqa[lineno]
                if ids is None or rule_id in ids:
                    return True
        return False


def _iter_python_files(paths: Iterable[str]) -> List[str]:
    out = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("__pycache__", ".git"))
                out.extend(os.path.join(root, f) for f in sorted(files)
                           if f.endswith(".py"))
        elif path.endswith(".py"):
            out.append(path)
    return out


def _run(files: List[SourceFile], rules) -> List[LintViolation]:
    from repro.analysis.lint.rules import RULES
    active = list(RULES if rules is None else rules)
    for rule in active:
        context = {}
        for file in files:
            rule.scan(file, context)
        rule.context = context
    violations: List[LintViolation] = []
    for file in files:
        for rule in active:
            for violation in rule.check(file, rule.context):
                if not file.suppressed(violation.line, violation.rule_id):
                    violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.rule_id))
    return violations


def lint_paths(paths: Iterable[str], rules=None) -> List[LintViolation]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    files = []
    for path in _iter_python_files(paths):
        with open(path, encoding="utf-8") as fh:
            files.append(SourceFile(path, fh.read()))
    return _run(files, rules)


def lint_source(source: str, path: str = "src/repro/sim/snippet.py",
                rules=None) -> List[LintViolation]:
    """Lint one in-memory snippet as if it lived at ``path``.

    The path decides which rules apply (deterministic zone, hot-function
    catalogue, scheme modules), so tests can aim a snippet at any rule.
    """
    return _run([SourceFile(path, source)], rules)


def format_violations(violations: List[LintViolation]) -> str:
    if not violations:
        return "repro check --static: clean"
    lines = [v.format() for v in violations]
    lines.append(f"{len(violations)} violation(s)")
    return "\n".join(lines)
