"""Shared execution engine: canonical run requests, a content-addressed
disk result cache, and a deduplicating planner/executor that every
experiment runs through (see :mod:`repro.experiments.common`)."""

from repro.exec.cache import ResultCache, default_cache, default_cache_dir
from repro.exec.engine import (
    EngineStats,
    ExecutionEngine,
    get_engine,
    set_engine,
    shutdown_engine,
    use_engine,
    worker_count,
)
from repro.exec.options import EngineOptions
from repro.exec.planner import (
    PlannedExperiment,
    plan_experiments,
    run_all,
    union_requests,
)
from repro.exec.request import CACHE_SCHEMA_VERSION, RunRequest, simulator_fingerprint

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "EngineOptions",
    "EngineStats",
    "ExecutionEngine",
    "PlannedExperiment",
    "ResultCache",
    "RunRequest",
    "default_cache",
    "default_cache_dir",
    "get_engine",
    "plan_experiments",
    "run_all",
    "set_engine",
    "shutdown_engine",
    "simulator_fingerprint",
    "union_requests",
    "use_engine",
    "worker_count",
]
