"""Deduplicating, caching executor shared by every experiment.

The engine takes batches of :class:`RunRequest`s, folds duplicates,
serves repeats from an in-process memo or the disk cache, and simulates
the remainder on one persistent process pool — torn down at interpreter
exit, not after every suite, so back-to-back experiments reuse warm
workers.  Worker failures are re-raised as :class:`SimulationError`
naming the exact (config, workload, budget, seed) job that died.
"""

import atexit
import time
from contextlib import contextmanager
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.exec.cache import ResultCache
from repro.exec.options import PARALLEL_ENV, EngineOptions
from repro.exec.request import RunRequest
from repro.sim.result import SimulationResult
from repro.sim.runner import run_many, run_workload

__all__ = [
    "PARALLEL_ENV",
    "EngineOptions",
    "EngineStats",
    "ExecutionEngine",
    "get_engine",
    "set_engine",
    "shutdown_engine",
    "use_engine",
    "worker_count",
]

#: Progress callback: (done, total, request, source) with source one of
#: ``"memo"``, ``"cache"``, ``"run"``.
ProgressFn = Callable[[int, int, RunRequest, str], None]


def worker_count() -> int:
    """Environment-default worker count (see :mod:`repro.exec.options`)."""
    return EngineOptions.from_env().resolve_workers()


def _execute(request: RunRequest) -> SimulationResult:
    """Run one request; module-level so process pools can pickle it."""
    return run_workload(
        request.config,
        request.resolve_workload(),
        max_instructions=request.budget,
        seed=request.seed,
    )


def _execute_batch(requests: List[RunRequest]) -> List[SimulationResult]:
    """Run a worker's whole share of a batch through one ``run_many``.

    Module-level so process pools can pickle it; batching inside the
    worker is what lets ``run_many`` amortize trace generation and
    kernel-buffer allocation across the jobs shipped to that worker.
    """
    return run_many(requests)


@dataclass
class EngineStats:
    """Cumulative planning/caching/execution accounting for one engine."""

    requested: int = 0      # requests submitted, duplicates included
    unique: int = 0         # distinct design points after dedup
    memo_hits: int = 0      # served from the in-process memo
    disk_hits: int = 0      # served from the disk cache
    executed: int = 0       # actually simulated
    wall_seconds: float = 0.0

    @property
    def duplicates(self) -> int:
        return self.requested - self.unique

    @property
    def hit_rate(self) -> float:
        """Fraction of unique points served without simulating."""
        if not self.unique:
            return 0.0
        return (self.memo_hits + self.disk_hits) / self.unique

    def summary(self) -> Dict[str, float]:
        return {
            "requested": self.requested,
            "unique": self.unique,
            "duplicates": self.duplicates,
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "executed": self.executed,
            "hit_rate": self.hit_rate,
            "wall_seconds": self.wall_seconds,
        }


class ExecutionEngine:
    """Plans, dedupes, caches, and runs batches of simulation requests."""

    def __init__(self, cache: Optional[ResultCache] = None,
                 max_workers: Optional[int] = None,
                 progress: Optional[ProgressFn] = None,
                 options: Optional[EngineOptions] = None,
                 offload: bool = False) -> None:
        if options is not None:
            if cache is None:
                cache = options.build_cache()
            if max_workers is None:
                max_workers = options.resolve_workers()
        self.options = options
        self.cache = cache
        self.max_workers = max_workers if max_workers is not None else worker_count()
        self.progress = progress
        #: When set, every simulation is dispatched to the process pool —
        #: even a singleton batch that the default policy would run
        #: in-process.  The sharded service sets this so N shard engines
        #: occupy N cores instead of contending for one GIL.
        self.offload = offload
        self.stats = EngineStats()
        self._memo: Dict[str, SimulationResult] = {}
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- lifecycle -------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- execution -------------------------------------------------------
    def run(self, requests: Sequence[RunRequest]) -> List[SimulationResult]:
        """Results for ``requests``, in order, simulating each unique point
        at most once (ever, given the disk cache)."""
        requests = list(requests)
        start = time.perf_counter()
        keys = [request.cache_key() for request in requests]
        unique: Dict[str, RunRequest] = {}
        for key, request in zip(keys, requests):
            unique.setdefault(key, request)
        self.stats.requested += len(requests)
        self.stats.unique += len(unique)

        total = len(unique)
        done = 0
        results: Dict[str, SimulationResult] = {}
        pending: List[Tuple[str, RunRequest]] = []
        for key, request in unique.items():
            hit, source = self._lookup(key, request)
            if hit is None:
                pending.append((key, request))
                continue
            results[key] = hit
            done += 1
            self._report(done, total, request, source)

        for key, request, result in self._run_pending(pending):
            self._memo[key] = result
            if self.cache is not None:
                self.cache.put(request, result, key=key)
            self.stats.executed += 1
            results[key] = result
            done += 1
            self._report(done, total, request, "run")

        self.stats.wall_seconds += time.perf_counter() - start
        return [results[key] for key in keys]

    def _lookup(
        self, key: str, request: RunRequest
    ) -> Tuple[Optional[SimulationResult], Optional[str]]:
        if key in self._memo:
            self.stats.memo_hits += 1
            return self._memo[key], "memo"
        if self.cache is not None:
            result = self.cache.get(request, key=key)
            if result is not None:
                self._memo[key] = result
                self.stats.disk_hits += 1
                return result, "cache"
        return None, None

    def _run_pending(
        self, pending: List[Tuple[str, RunRequest]]
    ) -> Iterator[Tuple[str, RunRequest, SimulationResult]]:
        if not pending:
            return
        if not self.offload and (self.max_workers <= 1 or len(pending) == 1):
            yield from self._run_serial(pending)
            return
        # Ship each worker a contiguous slice rather than one job at a
        # time: callers submit sweeps in (scheme, workload) order, so
        # slices keep same-trace jobs together and run_many can amortize
        # trace generation and kernel buffers inside the worker.
        pool = self._ensure_pool()
        chunk = -(-len(pending) // self.max_workers)  # ceil division
        slices = [pending[i:i + chunk] for i in range(0, len(pending), chunk)]
        futures = {
            pool.submit(_execute_batch, [request for _, request in part]): part
            for part in slices
        }
        try:
            while futures:
                finished, _ = wait(futures, return_when=FIRST_EXCEPTION)
                for future in finished:
                    part = futures.pop(future)
                    exc = future.exception()
                    if exc is not None:
                        jobs = ", ".join(r.describe() for _, r in part)
                        raise SimulationError(
                            f"simulation failed within batch [{jobs}]: {exc}"
                        ) from exc
                    for (key, request), result in zip(part, future.result()):
                        yield key, request, result
        finally:
            for future in futures:
                future.cancel()

    def _run_serial(
        self, pending: List[Tuple[str, RunRequest]]
    ) -> Iterator[Tuple[str, RunRequest, SimulationResult]]:
        """In-process path: one ``run_many`` over the whole batch.

        On any batch failure, fall back to per-request execution so the
        error is attributed to the exact design point that died (and its
        batch-mates still complete).
        """
        try:
            results = run_many([request for _, request in pending])
        except Exception:
            for key, request in pending:
                yield key, request, self._execute_with_context(request)
            return
        for (key, request), result in zip(pending, results):
            yield key, request, result

    @staticmethod
    def _execute_with_context(request: RunRequest) -> SimulationResult:
        try:
            return _execute(request)
        except Exception as exc:
            raise SimulationError(
                f"simulation failed for {request.describe()}: {exc}"
            ) from exc

    def _report(self, done: int, total: int, request: RunRequest, source: str) -> None:
        if self.progress is not None:
            self.progress(done, total, request, source)


# -- shared default engine ----------------------------------------------
_default_engine: Optional[ExecutionEngine] = None
#: Options the default engine was built from (``None`` when it was handed
#: over explicitly via :func:`set_engine`/:func:`use_engine`, in which
#: case environment changes never trigger a rebuild).
_default_options: Optional[EngineOptions] = None


def get_engine(options: Optional[EngineOptions] = None) -> ExecutionEngine:
    """The process-wide engine, rebuilt if its options changed.

    With no argument the engine follows the environment defaults
    (:meth:`EngineOptions.from_env`); passing explicit ``options`` pins
    it.  Sharing one engine across experiments is what turns N
    overlapping sweeps into one deduplicated one: its memo and pool
    persist between ``run_suite`` calls.
    """
    global _default_engine, _default_options
    if _default_engine is not None and options is None and _default_options is None:
        return _default_engine  # explicitly installed: env changes don't evict
    desired = options if options is not None else EngineOptions.from_env()
    if _default_engine is None or desired != _default_options:
        if _default_engine is not None:
            _default_engine.close()
        _default_engine = ExecutionEngine(options=desired)
        _default_options = desired
    return _default_engine


def set_engine(engine: Optional[ExecutionEngine]) -> None:
    """Replace the process-wide engine (tests, custom CLI wiring)."""
    global _default_engine, _default_options
    if _default_engine is not None and _default_engine is not engine:
        _default_engine.close()
    _default_engine = engine
    _default_options = None


@contextmanager
def use_engine(engine: ExecutionEngine) -> Iterator[ExecutionEngine]:
    """Temporarily make ``engine`` the process-wide default.

    Unlike :func:`set_engine`, the previous default is restored (and not
    closed) on exit — for scoped wiring like the CLI's ``--all`` sweep.
    """
    global _default_engine, _default_options
    prev, prev_options = _default_engine, _default_options
    _default_engine, _default_options = engine, None
    try:
        yield engine
    finally:
        _default_engine, _default_options = prev, prev_options


def shutdown_engine() -> None:
    set_engine(None)


atexit.register(shutdown_engine)
