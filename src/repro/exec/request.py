"""Canonical simulation requests with stable content hashes.

A :class:`RunRequest` names one design point — machine configuration,
workload, instruction budget, seed — and hashes it (together with a
fingerprint of the simulator's own source) into a content-address.  Two
requests with the same key are guaranteed to produce the same
:class:`~repro.sim.result.SimulationResult`, which is what makes
deduplication and disk caching sound.
"""

import hashlib
import json
from dataclasses import asdict, dataclass
from functools import lru_cache
from pathlib import Path
from typing import Union

from repro.sim.config import MachineConfig
from repro.workloads import SyntheticWorkload, WorkloadSpec, get_workload

#: Bump when the request-hash or result-serialization format changes
#: incompatibly; stale cache entries then simply stop matching.
CACHE_SCHEMA_VERSION = 1

#: Top-level entries of the ``repro`` package that cannot influence a
#: simulation result, and therefore stay out of the source fingerprint —
#: editing the CLI, an experiment's rendering, a lint rule under
#: ``analysis/``, the bench harness, the HTTP service, the ``repro.api``
#: facade, or the sweep autopilot must not invalidate every cached run.
_NON_SIMULATION_PARTS = frozenset({
    "experiments", "exec", "analysis", "perf", "service", "api",
    "sweeps", "cli.py", "__main__.py", "reporting.py",
})


def fingerprint_tree(root: Path) -> str:
    """Digest of every simulation-relevant source file under ``root``.

    Split from :func:`simulator_fingerprint` so the exclusion policy can
    be exercised on synthetic trees in tests.
    """
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        if rel.parts[0] in _NON_SIMULATION_PARTS:
            continue
        digest.update(str(rel).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


@lru_cache(maxsize=1)
def simulator_fingerprint() -> str:
    """Digest of every source file the simulator's output depends on.

    Baked into each cache key, so any change to the model invalidates old
    cached results automatically — no manual version bumping.
    """
    import repro

    return fingerprint_tree(Path(repro.__file__).parent)


@dataclass(frozen=True)
class RunRequest:
    """One simulation design point: (machine, workload, budget, seed).

    ``workload`` is either a suite workload name or an explicit
    :class:`~repro.workloads.WorkloadSpec` for out-of-suite workloads.
    """

    config: MachineConfig
    workload: Union[str, WorkloadSpec]
    budget: int
    seed: int = 1

    @property
    def workload_name(self) -> str:
        return self.workload if isinstance(self.workload, str) else self.workload.name

    def resolve_workload(self) -> SyntheticWorkload:
        if isinstance(self.workload, str):
            return get_workload(self.workload)
        return SyntheticWorkload(self.workload)

    def describe(self) -> str:
        """Human-readable job identity for progress lines and errors."""
        return (
            f"workload={self.workload_name!r} config={self.config.name!r} "
            f"scheme={self.config.scheme.kind!r} budget={self.budget} seed={self.seed}"
        )

    def cache_key(self) -> str:
        """Stable sha256 content-address of this design point."""
        workload = (
            self.workload if isinstance(self.workload, str) else asdict(self.workload)
        )
        blob = json.dumps(
            {
                "schema": CACHE_SCHEMA_VERSION,
                "sim": simulator_fingerprint(),
                "config": self.config.cache_key(),
                "workload": workload,
                "budget": self.budget,
                "seed": self.seed,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode()).hexdigest()
