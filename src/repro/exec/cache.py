"""Disk-backed content-addressed result cache.

Entries are JSON files named by the request's content hash, stored under
the configured cache directory (default ``~/.cache/repro``; see
:mod:`repro.exec.options` for the environment knobs).  Because the hash
covers the machine configuration, workload, budget, seed, serialization
schema, *and* a fingerprint of the simulator source, a stale entry can
never be returned — changing the model changes every key.  Writes are
atomic (tmp file + rename) so concurrent processes can share one cache.
"""

import json
import os
from pathlib import Path
from typing import Optional

from repro.exec.options import CACHE_DIR_ENV, CACHE_ENABLE_ENV, EngineOptions
from repro.exec.request import CACHE_SCHEMA_VERSION, RunRequest
from repro.sim.result import SimulationResult

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_ENABLE_ENV",
    "ResultCache",
    "cache_enabled",
    "default_cache",
    "default_cache_dir",
]


def default_cache_dir() -> Path:
    return EngineOptions.from_env().resolve_cache_dir()


def cache_enabled() -> bool:
    return EngineOptions.from_env().cache_enabled


def default_cache() -> Optional["ResultCache"]:
    """The environment-configured cache, or ``None`` when disabled."""
    return EngineOptions.from_env().build_cache()


class ResultCache:
    """Content-addressed store of serialized :class:`SimulationResult`s."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        return self.root / "results" / key[:2] / f"{key}.json"

    def get(self, request: RunRequest, key: Optional[str] = None) -> Optional[SimulationResult]:
        """The cached result for ``request``, or ``None`` on any miss.

        Unreadable, corrupt, or schema-incompatible entries count as
        misses — the cache is an accelerator, never a failure source.
        """
        path = self.path_for(key if key is not None else request.cache_key())
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        try:
            return SimulationResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, request: RunRequest, result: SimulationResult,
            key: Optional[str] = None) -> Path:
        path = self.path_for(key if key is not None else request.cache_key())
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "request": request.describe(),
            "result": result.to_dict(),
        }
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("results/*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("results/*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
