"""Engine configuration: the one place environment knobs are read.

Every tunable of the execution engine — result-cache location and
enablement, worker-process count — is a field of :class:`EngineOptions`.
The environment variables below are *defaults* consumed exactly here, in
:meth:`EngineOptions.from_env`; everything else in the repository (CLI
flags, the service daemon, tests) builds an explicit ``EngineOptions``
and threads it through :func:`repro.exec.engine.get_engine`.  Nothing
outside this module reads or mutates these variables.
"""

import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigError

if TYPE_CHECKING:
    from repro.exec.cache import ResultCache

#: Overrides the disk result-cache location (default ``~/.cache/repro``).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Set to ``0``/``off``/``false`` to disable result caching entirely.
CACHE_ENABLE_ENV = "REPRO_CACHE"
#: Worker count: 0 or 1 forces serial; unset picks ``min(cpu_count, 12)``.
PARALLEL_ENV = "REPRO_PARALLEL"
#: Service shard count: engine workers behind ``repro serve`` (default 1).
SHARDS_ENV = "REPRO_SHARDS"

#: Upper bound on the default worker count (diminishing returns past it).
_DEFAULT_WORKER_CAP = 12


def _env_cache_enabled() -> bool:
    return os.environ.get(CACHE_ENABLE_ENV, "1").lower() not in ("0", "off", "false")


def _env_cache_dir() -> Optional[Path]:
    raw = os.environ.get(CACHE_DIR_ENV)
    return Path(raw) if raw else None


def _env_workers() -> Optional[int]:
    raw = os.environ.get(PARALLEL_ENV)
    if raw is None or raw == "":
        return None
    try:
        return int(raw)
    except ValueError:
        raise ConfigError(
            f"{PARALLEL_ENV} must be an integer worker count, got {raw!r}"
        ) from None


def _env_shards() -> Optional[int]:
    raw = os.environ.get(SHARDS_ENV)
    if raw is None or raw == "":
        return None
    try:
        return int(raw)
    except ValueError:
        raise ConfigError(
            f"{SHARDS_ENV} must be an integer shard count, got {raw!r}"
        ) from None


@dataclass(frozen=True)
class EngineOptions:
    """Explicit, comparable configuration for one execution engine.

    ``None`` fields mean "use the built-in default" (home cache dir,
    cpu-derived worker count) — *not* "read the environment".  Reading
    the environment happens only in :meth:`from_env`.
    """

    cache_enabled: bool = True
    cache_dir: Optional[Path] = None
    max_workers: Optional[int] = None
    shards: Optional[int] = None

    @classmethod
    def from_env(cls, cache_enabled: Optional[bool] = None,
                 cache_dir: Optional[Path] = None,
                 max_workers: Optional[int] = None,
                 shards: Optional[int] = None) -> "EngineOptions":
        """Environment-derived defaults, with explicit keyword overrides.

        This classmethod is the single site in the repository where the
        ``REPRO_CACHE`` / ``REPRO_CACHE_DIR`` / ``REPRO_PARALLEL`` /
        ``REPRO_SHARDS`` variables are consulted.
        """
        options = cls(
            cache_enabled=_env_cache_enabled(),
            cache_dir=_env_cache_dir(),
            max_workers=_env_workers(),
            shards=_env_shards(),
        )
        if cache_enabled is not None:
            options = replace(options, cache_enabled=cache_enabled)
        if cache_dir is not None:
            options = replace(options, cache_dir=Path(cache_dir))
        if max_workers is not None:
            options = replace(options, max_workers=max_workers)
        if shards is not None:
            options = replace(options, shards=shards)
        return options

    # -- resolution ------------------------------------------------------
    def resolve_cache_dir(self) -> Path:
        if self.cache_dir is not None:
            return self.cache_dir
        return Path.home() / ".cache" / "repro"

    def resolve_workers(self) -> int:
        """Concrete worker count: 0/1 force serial, ``None`` is cpu-derived."""
        if self.max_workers is None:
            return min(os.cpu_count() or 1, _DEFAULT_WORKER_CAP)
        return max(1, self.max_workers)

    def resolve_shards(self) -> int:
        """Concrete service shard count (sharding is opt-in: default 1)."""
        if self.shards is None:
            return 1
        return max(1, self.shards)

    def workers_per_shard(self) -> int:
        """The worker-process budget each of ``resolve_shards()`` shard
        engines receives: the total worker count divided evenly, never
        below one per shard."""
        return max(1, self.resolve_workers() // self.resolve_shards())

    def build_cache(self) -> Optional["ResultCache"]:
        """A :class:`ResultCache` at the resolved location, or ``None``."""
        if not self.cache_enabled:
            return None
        from repro.exec.cache import ResultCache

        return ResultCache(self.resolve_cache_dir())
