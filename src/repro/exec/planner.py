"""Cross-experiment run planning: union, dedupe, execute once, fan out.

Every experiment module declares its design points through a ``plan``
function (see :mod:`repro.experiments.registry`).  The planner collects
those requests for any set of experiments, folds shared points — the
conventional baseline suite alone is requested by half a dozen paper
artifacts — and warms the engine with one batch.  The experiments' own
``run`` functions then execute against a fully-primed memo, so rendering
all 17 artifacts costs exactly one simulation per unique design point.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec.engine import ExecutionEngine, get_engine, use_engine
from repro.exec.request import RunRequest


@dataclass
class PlannedExperiment:
    """One experiment's contribution to the sweep."""

    id: str
    paper_artifact: str
    requests: List[RunRequest]


def plan_experiments(exp_ids: Optional[Sequence[str]] = None,
                     budget: Optional[int] = None) -> List[PlannedExperiment]:
    """Collect every named experiment's design points (all when ``None``)."""
    from repro.experiments.registry import EXPERIMENTS

    plans = []
    for exp_id, exp in EXPERIMENTS.items():
        if exp_ids is not None and exp_id not in exp_ids:
            continue
        requests = exp.plan(budget=budget) if exp.plan is not None else []
        plans.append(PlannedExperiment(exp_id, exp.paper_artifact, list(requests)))
    return plans


def union_requests(plans: Sequence[PlannedExperiment]) -> List[RunRequest]:
    """Deduplicated union of all planned points, first-seen order."""
    seen: Dict[str, RunRequest] = {}
    for plan in plans:
        for request in plan.requests:
            seen.setdefault(request.cache_key(), request)
    return list(seen.values())


def run_all(exp_ids: Optional[Sequence[str]] = None,
            budget: Optional[int] = None,
            engine: Optional[ExecutionEngine] = None) -> List[Tuple[str, Dict, str]]:
    """Plan, execute, and render experiments in one deduplicated sweep.

    Returns ``(experiment id, data, rendered text)`` triples.  Execution
    statistics accumulate on the engine's ``stats``.
    """
    from repro.experiments.registry import run_experiment

    engine = engine if engine is not None else get_engine()
    plans = plan_experiments(exp_ids, budget=budget)
    with use_engine(engine):
        engine.run(union_requests(plans))
        rendered = []
        for plan in plans:
            kwargs = {"budget": budget} if budget is not None else {}
            data, text = run_experiment(plan.id, **kwargs)
            rendered.append((plan.id, data, text))
    return rendered
