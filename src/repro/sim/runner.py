"""Convenience entry points for running one workload on one machine."""

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.isa.trace import Trace, validate_trace
from repro.sim.config import MachineConfig
from repro.sim.processor import Processor
from repro.sim.result import SimulationResult
from repro.sim.soa import KernelBuffers

#: Environment variable scaling every experiment's instruction budget.
INSTRUCTIONS_ENV = "REPRO_INSTRUCTIONS"
DEFAULT_INSTRUCTIONS = 12_000


def instruction_budget(default: Optional[int] = None) -> int:
    """Per-run committed-instruction budget for experiments.

    The paper simulates 100M-instruction SimPoints; a pure-Python model
    cannot, so experiments default to a budget that keeps the full harness
    in CI-friendly time while past the warm-up transient.  Set
    ``REPRO_INSTRUCTIONS`` to scale every experiment up or down at once.
    """
    # Budget scaling is recorded in every result row (instructions field),
    # so the profile already captures it.  # repro: noqa[REPRO011]
    value = os.environ.get(INSTRUCTIONS_ENV)  # repro: noqa[REPRO011]
    if value:
        try:
            parsed = int(value)
        except ValueError:
            raise ConfigError(
                f"{INSTRUCTIONS_ENV} must be an integer instruction count, "
                f"got {value!r}"
            ) from None
        return max(1_000, parsed)
    return default if default is not None else DEFAULT_INSTRUCTIONS


def run_trace(
    config: MachineConfig,
    trace: Trace,
    max_instructions: Optional[int] = None,
    seed: int = 1,
    validate: bool = False,
    prewarm: bool = True,
) -> SimulationResult:
    """Run ``trace`` to completion (or budget) on ``config``.

    ``prewarm`` functionally warms the front end (I-cache, predictor) so a
    short run measures steady-state behaviour; see
    :meth:`Processor.prewarm`.
    """
    if validate:
        validate_trace(trace)
    budget = max_instructions if max_instructions is not None else len(trace)
    processor = Processor(config, trace, seed=seed)
    if prewarm:
        processor.prewarm()
    return processor.run(budget)


def run_workload(
    config: MachineConfig,
    workload,
    max_instructions: Optional[int] = None,
    seed: int = 1,
) -> SimulationResult:
    """Generate a workload's trace and run it.

    ``workload`` is any object with ``generate(num_instructions) -> Trace``
    (see :mod:`repro.workloads`).  The trace is generated slightly longer
    than the budget so the pipeline never starves at the trace tail.
    """
    budget = max_instructions if max_instructions is not None else instruction_budget()
    trace = workload.generate(budget + 2_000)
    return run_trace(config, trace, max_instructions=budget, seed=seed)


def _resolve_workload(workload):
    """Accept a suite name, a WorkloadSpec, or a generate()-bearing object."""
    if hasattr(workload, "generate"):
        return workload
    from repro.workloads import SyntheticWorkload, get_workload

    if isinstance(workload, str):
        return get_workload(workload)
    return SyntheticWorkload(workload)


def run_many(requests: Sequence, prewarm: bool = True) -> List[SimulationResult]:
    """Run a batch of design points in request order, amortizing setup.

    Each request carries ``config`` (a :class:`MachineConfig`),
    ``workload`` (a suite name, a ``WorkloadSpec``, or any object with
    ``generate(n)``), ``budget`` (``None`` for the environment default)
    and ``seed`` — :class:`repro.exec.request.RunRequest` satisfies the
    protocol as-is.

    Batch-level amortization, behaviour-neutral per element:

    * one generated trace — and therefore one SoA column decode — per
      distinct (workload, budget) pair;
    * one slot-pool allocation per machine geometry, threaded between
      elements via ``Processor.soa_buffers``.

    Every element still gets a fresh :class:`Processor` with its own RNG
    stream, so results are bit-identical to calling :func:`run_workload`
    once per request and seeds cannot leak across batch elements.
    """
    results: List[SimulationResult] = []
    traces: Dict[Tuple[str, int], Trace] = {}
    buffers: Dict[int, Optional[KernelBuffers]] = {}
    for request in requests:
        config = request.config
        budget = request.budget
        if budget is None:
            budget = instruction_budget()
        workload = _resolve_workload(request.workload)
        trace_key = (getattr(workload, "name", repr(request.workload)), budget)
        trace = traces.get(trace_key)
        if trace is None:
            trace = workload.generate(budget + 2_000)
            traces[trace_key] = trace
        processor = Processor(config, trace, seed=request.seed)
        pool = config.rob_size + config.fetch_buffer + 8
        processor.soa_buffers = buffers.get(pool)
        if prewarm:
            processor.prewarm()
        results.append(processor.run(budget))
        if processor.soa_buffers is not None:
            buffers[pool] = processor.soa_buffers
    return results
