"""Convenience entry points for running one workload on one machine."""

import os
from typing import Optional

from repro.errors import ConfigError
from repro.isa.trace import Trace, validate_trace
from repro.sim.config import MachineConfig
from repro.sim.processor import Processor
from repro.sim.result import SimulationResult

#: Environment variable scaling every experiment's instruction budget.
INSTRUCTIONS_ENV = "REPRO_INSTRUCTIONS"
DEFAULT_INSTRUCTIONS = 12_000


def instruction_budget(default: Optional[int] = None) -> int:
    """Per-run committed-instruction budget for experiments.

    The paper simulates 100M-instruction SimPoints; a pure-Python model
    cannot, so experiments default to a budget that keeps the full harness
    in CI-friendly time while past the warm-up transient.  Set
    ``REPRO_INSTRUCTIONS`` to scale every experiment up or down at once.
    """
    value = os.environ.get(INSTRUCTIONS_ENV)
    if value:
        try:
            parsed = int(value)
        except ValueError:
            raise ConfigError(
                f"{INSTRUCTIONS_ENV} must be an integer instruction count, "
                f"got {value!r}"
            ) from None
        return max(1_000, parsed)
    return default if default is not None else DEFAULT_INSTRUCTIONS


def run_trace(
    config: MachineConfig,
    trace: Trace,
    max_instructions: Optional[int] = None,
    seed: int = 1,
    validate: bool = False,
    prewarm: bool = True,
) -> SimulationResult:
    """Run ``trace`` to completion (or budget) on ``config``.

    ``prewarm`` functionally warms the front end (I-cache, predictor) so a
    short run measures steady-state behaviour; see
    :meth:`Processor.prewarm`.
    """
    if validate:
        validate_trace(trace)
    budget = max_instructions if max_instructions is not None else len(trace)
    processor = Processor(config, trace, seed=seed)
    if prewarm:
        processor.prewarm()
    return processor.run(budget)


def run_workload(
    config: MachineConfig,
    workload,
    max_instructions: Optional[int] = None,
    seed: int = 1,
) -> SimulationResult:
    """Generate a workload's trace and run it.

    ``workload`` is any object with ``generate(num_instructions) -> Trace``
    (see :mod:`repro.workloads`).  The trace is generated slightly longer
    than the budget so the pipeline never starves at the trace tail.
    """
    budget = max_instructions if max_instructions is not None else instruction_budget()
    trace = workload.generate(budget + 2_000)
    return run_trace(config, trace, max_instructions=budget, seed=seed)
