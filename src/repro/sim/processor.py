"""Trace-driven cycle-level out-of-order pipeline.

Models an 8-wide superscalar core in the style of SimpleScalar's
out-of-order simulator, as configured in the paper's Table 1:

* fetch through an I-cache with a combined bimodal/gshare predictor and
  BTB; fetch stalls at a mispredicted (or BTB-missing taken) branch and
  resumes ``branch_penalty`` cycles after the branch resolves — the
  standard trace-driven treatment of wrong-path execution.  Wrong-path
  *loads* still matter to the paper (they corrupt YLA), so their effect is
  injected by :class:`~repro.frontend.wrongpath.WrongPathModel`;
* rename/dispatch into ROB + split INT/FP issue queues + LQ/SQ, blocking
  on any full resource;
* oldest-first issue with functional-unit and D-cache-port bandwidth;
  loads issue speculatively past unresolved older stores, forward from the
  SQ, or are rejected and retried (POWER4-style);
* in-order commit; stores write the D-cache at commit;
* memory-ordering violations cause a squash-and-refetch from the violating
  load (execution-time for conventional schemes, commit-time for DMDC).

A simulator-side ground-truth checker flags every *true* premature load at
store resolution; any scheme that lets such a load retire un-replayed
raises :class:`~repro.errors.OrderingViolationMissed`.  The flags also feed
DMDC's replay taxonomy (Tables 3/5 of the paper).
"""

import heapq
from collections import defaultdict, deque
from typing import Dict, List, Optional, Set

from repro.backend.dyninst import DynInstr, InstrState
from repro.backend.resources import FunctionalUnits, PhysRegFile
from repro.coherence.injector import InvalidationInjector
from repro.core.schemes import CommitDecision, build_scheme
from repro.core.storesets import StoreSetPredictor
from repro.core.schemes.conventional import ConventionalScheme
from repro.errors import OrderingViolationMissed, SimulationError
from repro.frontend.branch_predictor import CombinedPredictor
from repro.frontend.wrongpath import WrongPathModel
from repro.isa.opcodes import InstrClass, uses_fp_queue
from repro.isa.trace import Trace
from repro.lsq.queues import ForwardAction, LoadQueue, StoreQueue
from repro.mem.hierarchy import MemoryHierarchy
from repro.sim.config import MachineConfig
from repro.sim.result import SimulationResult
from repro.stats.counters import CounterSet
from repro.utils.bitops import contains, overlap
from repro.utils.rng import DeterministicRng
from repro.utils.ring import RingBuffer


class Processor:
    """One core running one trace under one dependence-checking scheme."""

    def __init__(self, config: MachineConfig, trace: Trace, seed: int = 1):
        self.config = config
        self.trace = trace
        self.rng = DeterministicRng(seed, f"proc:{trace.name}")

        self.predictor = CombinedPredictor(
            bimodal_entries=config.bimodal_entries,
            gshare_entries=config.gshare_entries,
            history_bits=config.gshare_history,
            meta_entries=config.meta_entries,
            btb_entries=config.btb_entries,
            btb_assoc=config.btb_assoc,
        )
        self.memory = MemoryHierarchy(
            config.l1i_config(), config.l1d_config(), config.l2_config(),
            config.memory_latency,
        )
        self.fus = FunctionalUnits(
            config.int_alu, config.int_muldiv, config.fp_alu, config.fp_muldiv
        )
        self.regs_int = PhysRegFile(config.regs_int)
        self.regs_fp = PhysRegFile(config.regs_fp)
        self.rob: RingBuffer = RingBuffer(config.rob_size)
        self.lq = LoadQueue(config.lq_size)
        self.sq = StoreQueue(config.sq_size)
        self.scheme = build_scheme(config.scheme, config)
        if isinstance(self.scheme, ConventionalScheme):
            self.scheme.attach(self.lq, self.sq, config.l2_line_bytes)
        elif hasattr(self.scheme, "attach_rob"):
            self.scheme.attach_rob(self.rob)
        self.wrongpath = WrongPathModel(
            self.rng.child("wrongpath"),
            mean_loads_per_mispredict=config.wrongpath_mean_loads,
            enabled=config.wrongpath_loads,
        )
        self.storesets = StoreSetPredictor() if config.scheme.store_sets else None
        self.invalidations = InvalidationInjector(
            self.rng.child("invalidations"),
            config.invalidation_rate,
            config.l2_line_bytes,
        )

        # Pipeline state
        self.cycle = 0
        self.next_seq = 0
        self.fetch_idx = 0
        self.fetch_buffer: deque = deque()
        self.fetch_resume_cycle = 0
        self.fetch_blocked_branch: Optional[DynInstr] = None
        self._last_fetch_line = -1
        self.rename: Dict[int, DynInstr] = {}
        self.iq_int_count = 0
        self.iq_fp_count = 0
        self._ready: List = []  # heap of (seq, DynInstr)
        self._completions: Dict[int, List[DynInstr]] = defaultdict(list)
        self._retries: Dict[int, List[DynInstr]] = defaultdict(list)
        self.committed = 0
        self._commit_target = float("inf")
        self.counters = CounterSet()
        self._checking_cycles = 0
        self._replay_streak: Dict[int, int] = {}
        self._force_nonspec: Set[int] = set()
        self._squashed_this_cycle = False
        #: Optional PipelineTracer; when set, every pipeline event is recorded.
        self.tracer = None

    # ==================================================================
    # Public driver
    # ==================================================================
    def prewarm(self, instructions: Optional[int] = None) -> None:
        """Functionally warm the I-cache, L2 code lines, and branch predictor.

        The paper measures 100M-instruction SimPoints where front-end
        structures are in steady state; short Python-scale runs would
        otherwise spend most of their cycles on cold code misses.  Data
        caches are deliberately *not* prewarmed — data-stream misses are a
        real steady-state effect the timing run must see.
        """
        n = len(self.trace) if instructions is None else min(instructions, len(self.trace))
        predictor = self.predictor
        memory = self.memory
        for i in range(n):
            uop = self.trace[i]
            memory.fetch(uop.pc)
            if uop.is_branch:
                _, snapshot = predictor.predict(uop.pc)
                predictor.resolve(uop.pc, uop.taken, snapshot)
                if uop.taken:
                    predictor.btb.install(uop.pc, uop.target)
        # The warm-up should not leak into reported statistics.
        memory.l1i.hits = memory.l1i.misses = memory.l1i.evictions = 0
        memory.l2.hits = memory.l2.misses = memory.l2.evictions = 0
        predictor.lookups = 0
        predictor.mispredictions = 0
        predictor.btb.hits = predictor.btb.misses = 0

    def run(self, max_instructions: int, max_cycles: Optional[int] = None) -> SimulationResult:
        """Simulate until ``max_instructions`` commit (or trace/cycles end)."""
        if max_cycles is None:
            max_cycles = max(200_000, max_instructions * 60)
        target = min(max_instructions, len(self.trace))
        self._commit_target = target
        while self.committed < target:
            self.step()
            if self.cycle > max_cycles:
                raise SimulationError(
                    f"no forward progress: {self.committed}/{target} committed "
                    f"after {self.cycle} cycles on {self.trace.name}"
                )
        self.scheme.finalize(self.cycle)
        return self._build_result()

    def step(self) -> None:
        """Advance one cycle (commit -> writeback -> issue -> dispatch -> fetch)."""
        self._squashed_this_cycle = False
        if self.scheme.checking_active:
            self._checking_cycles += 1
        self._stage_commit()
        self._stage_complete()
        self._stage_issue()
        self._stage_dispatch()
        self._stage_fetch()
        self._inject_invalidations()
        self.cycle += 1

    # ==================================================================
    # Commit
    # ==================================================================
    def _stage_commit(self) -> None:
        for _ in range(self.config.width):
            if self.committed >= self._commit_target:
                return
            head = self.rob.head()
            if head is None or head.state != InstrState.COMPLETED:
                break
            decision = self.scheme.on_commit(head, self.cycle)
            if decision == CommitDecision.REPLAY:
                self.counters.bump("replays")
                self.counters.bump("replays.commit_time")
                if self.tracer is not None:
                    self.tracer.record("replay", head, self.cycle)
                self._squash_from(head)
                return
            if head.is_load and head.true_violation_store >= 0:
                raise OrderingViolationMissed(
                    f"load seq={head.seq} addr={head.addr:#x} retired despite a "
                    f"premature issue past store seq={head.true_violation_store} "
                    f"under scheme {self.scheme.name}"
                )
            self._retire(head)

    def _retire(self, instr: DynInstr) -> None:
        instr.state = InstrState.COMMITTED
        instr.commit_cycle = self.cycle
        if self.tracer is not None:
            self.tracer.record("commit", instr, self.cycle)
        self.rob.pop()
        uop = instr.uop
        if uop.dst is not None:
            (self.regs_fp if uop.dst >= 32 else self.regs_int).release()
            if self.rename.get(uop.dst) is instr:
                del self.rename[uop.dst]
        if instr.is_load:
            self.lq.retire_head(instr)
            self.counters.bump("commit.loads")
            if self.scheme.reexecutes_loads:
                # Value-based checking: every load re-accesses the cache.
                self.memory.read(instr.addr)
                self.counters.bump("dcache.reexecutions")
            if instr.safe:
                self.counters.bump("commit.safe_loads")
        elif instr.is_store:
            self.sq.retire_head(instr)
            self.memory.write(instr.addr)
            self.counters.bump("commit.stores")
        elif instr.is_branch:
            self.counters.bump("commit.branches")
        self.committed += 1
        self.counters.bump("commit.instructions")
        self._replay_streak.pop(instr.trace_idx, None)
        self._force_nonspec.discard(instr.trace_idx)

    # ==================================================================
    # Writeback / completion
    # ==================================================================
    def _stage_complete(self) -> None:
        for instr in self._completions.pop(self.cycle, ()):
            if instr.squashed or instr.state == InstrState.COMPLETED:
                continue
            instr.state = InstrState.COMPLETED
            instr.complete_cycle = self.cycle
            if self.tracer is not None:
                self.tracer.record("complete", instr, self.cycle)
            if instr.uop.dst is not None:
                self.counters.bump("regfile.writes")
            self._wake_consumers(instr)
            if instr.is_branch:
                self._resolve_branch(instr)

    def _wake_consumers(self, producer: DynInstr) -> None:
        for consumer, kind in producer.consumers:
            if consumer.squashed:
                continue
            self.counters.bump("iq.wakeups")
            if kind == "op":
                consumer.pending_ops -= 1
                if consumer.pending_ops == 0 and consumer.state == InstrState.DISPATCHED:
                    consumer.state = InstrState.READY
                    heapq.heappush(self._ready, (consumer.seq, consumer))
            else:  # store data
                consumer.pending_data -= 1
                if (
                    consumer.pending_data == 0
                    and consumer.is_store
                    and consumer.resolved
                    and consumer.state == InstrState.ISSUED
                ):
                    self._completions[self.cycle + 1].append(consumer)
        producer.consumers.clear()

    def _resolve_branch(self, branch: DynInstr) -> None:
        uop = branch.uop
        mispredicted = self.predictor.resolve(uop.pc, uop.taken, branch.pred_snapshot)
        if uop.taken:
            self.predictor.btb.install(uop.pc, uop.target)
        if self.fetch_blocked_branch is branch:
            self.fetch_blocked_branch = None
            self.fetch_resume_cycle = self.cycle + self.config.branch_penalty
            if mispredicted:
                self.counters.bump("branch.mispredicts")
                self.scheme.on_recovery(branch.seq)
            else:
                self.counters.bump("branch.misfetches")

    # ==================================================================
    # Issue / execute
    # ==================================================================
    def _stage_issue(self) -> None:
        self.fus.new_cycle()
        for load in self._retries.pop(self.cycle, ()):
            if not load.squashed and load.state == InstrState.READY:
                heapq.heappush(self._ready, (load.seq, load))
        ports_left = self.config.dcache_ports
        issued = 0
        deferred: List[DynInstr] = []
        while self._ready and issued < self.config.width:
            _, instr = heapq.heappop(self._ready)
            if instr.squashed or instr.state != InstrState.READY:
                continue
            cls = instr.uop.cls
            if instr.is_load:
                outcome, ports_left = self._try_issue_load(instr, ports_left, deferred)
                if outcome:
                    issued += 1
                if self._squashed_this_cycle:
                    break
            elif instr.is_store:
                if not self.fus.try_acquire(cls):
                    deferred.append(instr)
                    continue
                self._issue_store(instr)
                issued += 1
                if self._squashed_this_cycle:
                    break
            else:
                if not self.fus.try_acquire(cls):
                    deferred.append(instr)
                    continue
                self._issue_alu(instr)
                issued += 1
        for instr in deferred:
            heapq.heappush(self._ready, (instr.seq, instr))

    def _free_iq_entry(self, instr: DynInstr) -> None:
        if instr.in_iq:
            instr.in_iq = False
            if instr.fp_side:
                self.iq_fp_count -= 1
            else:
                self.iq_int_count -= 1

    def _issue_alu(self, instr: DynInstr) -> None:
        instr.state = InstrState.ISSUED
        instr.issue_cycle = self.cycle
        if self.tracer is not None:
            self.tracer.record("issue", instr, self.cycle)
        self._free_iq_entry(instr)
        self.counters.bump("issue.instructions")
        self.counters.bump("regfile.reads", len(instr.uop.srcs))
        self.counters.bump("fu.ops")
        lat = self.fus.latency(instr.uop.cls)
        self._completions[self.cycle + lat].append(instr)

    def _issue_store(self, store: DynInstr) -> None:
        """AGU issue: the store's address resolves now."""
        store.state = InstrState.ISSUED
        store.issue_cycle = self.cycle
        store.resolve_cycle = self.cycle
        if self.tracer is not None:
            self.tracer.record("issue", store, self.cycle)
        self._free_iq_entry(store)
        self.counters.bump("issue.stores")
        self.counters.bump("regfile.reads", len(store.uop.srcs))
        if self.storesets is not None:
            self.storesets.store_resolved(store.uop.pc, store.seq)
        self._ground_truth_store_resolve(store)
        if store.pending_data == 0:
            self._completions[self.cycle + 1].append(store)
        # else: completion is scheduled when the data producer completes.
        victim = self.scheme.on_store_resolve(store, self.cycle)
        if victim is not None and not victim.squashed:
            self.counters.bump("replays")
            self.counters.bump("replays.execution_time")
            self._squash_from(victim)

    def _ground_truth_store_resolve(self, store: DynInstr) -> None:
        """Flag younger loads that truly issued prematurely past this store.

        A load is exempt when it forwarded from a store *younger* than this
        one that fully covered it (its data cannot be stale).
        """
        s_addr, s_size, s_seq = store.addr, store.size, store.seq
        for load in self.lq.ring:
            if (
                load.seq > s_seq
                and load.issue_cycle >= 0
                and load.state != InstrState.COMMITTED
                and overlap(s_addr, s_size, load.addr, load.size)
                and load.true_violation_store < 0
            ):
                if load.forward_store_seq > s_seq:
                    fwd = self._find_sq_entry(load.forward_store_seq)
                    if fwd is not None and contains(fwd.addr, fwd.size, load.addr, load.size):
                        continue
                load.true_violation_store = s_seq
                load.true_violation_pc = store.uop.pc
                self.counters.bump("groundtruth.violations")

    def _find_sq_entry(self, seq: int) -> Optional[DynInstr]:
        for store in self.sq.ring:
            if store.seq == seq:
                return store
        return None

    def _try_issue_load(self, load: DynInstr, ports_left: int, deferred: List[DynInstr]):
        """Attempt to issue one load; returns (issued?, ports_left)."""
        if load.trace_idx in self._force_nonspec and self.sq.oldest_unresolved_seq() is not None:
            # Livelock guard: after repeated replays this load waits until
            # every older store has resolved (it then issues as a safe load).
            self._retries[self.cycle + 1].append(load)
            return False, ports_left
        if self.storesets is not None:
            blocker = self.storesets.blocking_store(load.uop.pc, load.seq)
            if blocker is not None:
                # Predicted dependent on an in-flight unresolved store: wait.
                self.counters.bump("storesets.load_delays")
                self._retries[self.cycle + 2].append(load)
                return False, ports_left
        if ports_left <= 0:
            deferred.append(load)
            return False, ports_left
        if not self.fus.try_acquire(InstrClass.LOAD):
            deferred.append(load)
            return False, ports_left

        # Section 3 extension: a load older than every in-flight store can
        # skip the SQ search (tracked by an oldest-store-age register).
        sq_oldest = self.sq.oldest_seq()
        if self.config.scheme.sq_filter and (sq_oldest is None or load.seq < sq_oldest):
            self.counters.bump("sq.searches_filtered_age")
            self.sq.searches_filtered += 1
            result_action = ForwardAction.CACHE
            all_older_resolved = True
            fwd_store = None
        else:
            result = self.sq.search_for_forwarding(load)
            self.counters.bump("sq.searches")
            result_action = result.action
            all_older_resolved = result.all_older_resolved
            fwd_store = result.store

        if result_action == ForwardAction.REJECT:
            load.rejections += 1
            self.counters.bump("load.rejections")
            if self.tracer is not None:
                self.tracer.record("reject", load, self.cycle)
            self._retries[self.cycle + self.config.reject_retry_delay].append(load)
            return True, ports_left  # consumed bandwidth this cycle

        load.state = InstrState.ISSUED
        load.issue_cycle = self.cycle
        if self.tracer is not None:
            self.tracer.record("issue", load, self.cycle)
        self._free_iq_entry(load)
        self.counters.bump("issue.loads")
        self.counters.bump("regfile.reads", len(load.uop.srcs))
        load.speculative_issue = not all_older_resolved
        load.safe = all_older_resolved
        if load.trace_idx in self._force_nonspec and all_older_resolved:
            # Guard-tripped loads issued with every older store resolved are
            # provably violation-free; they bypass commit-time checking even
            # when the safe-load optimisation is disabled (ablation), which
            # guarantees forward progress.
            load.guard_bypass = True
        if load.safe:
            self.counters.bump("load.safe_at_issue")
        self.wrongpath.observe_address(load.addr)
        self.invalidations.observe(load.addr)

        if result_action == ForwardAction.FORWARD:
            load.forward_store_seq = fwd_store.seq
            self.counters.bump("load.forwarded")
            latency = 1 + self.config.l1d_latency
        else:
            ports_left -= 1
            self.counters.bump("dcache.reads")
            latency = 1 + self.memory.read(load.addr)
        self._completions[self.cycle + latency].append(load)

        victim = self.scheme.on_load_issue(load, self.cycle)
        if victim is not None and not victim.squashed:
            self.counters.bump("replays")
            self.counters.bump("replays.coherence")
            self._squash_from(victim)
        return True, ports_left

    # ==================================================================
    # Dispatch (rename + allocate)
    # ==================================================================
    def _stage_dispatch(self) -> None:
        dispatched = 0
        cfg = self.config
        while self.fetch_buffer and dispatched < cfg.width:
            instr = self.fetch_buffer[0]
            if self.cycle < instr.fetch_cycle + cfg.decode_latency:
                break
            uop = instr.uop
            if self.rob.full:
                self.counters.bump("stall.rob_full")
                break
            if instr.fp_side:
                if self.iq_fp_count >= cfg.iq_fp:
                    self.counters.bump("stall.iq_full")
                    break
            elif self.iq_int_count >= cfg.iq_int:
                self.counters.bump("stall.iq_full")
                break
            if instr.is_load and self.lq.full:
                self.counters.bump("stall.lq_full")
                break
            if instr.is_store and self.sq.full:
                self.counters.bump("stall.sq_full")
                break
            if uop.dst is not None:
                regs = self.regs_fp if uop.dst >= 32 else self.regs_int
                if not regs.try_allocate():
                    self.counters.bump("stall.regs_full")
                    break

            self.fetch_buffer.popleft()
            instr.dispatch_cycle = self.cycle
            if self.tracer is not None:
                self.tracer.record("dispatch", instr, self.cycle)
            self.rob.push(instr)
            instr.in_iq = True
            if instr.fp_side:
                self.iq_fp_count += 1
            else:
                self.iq_int_count += 1
            if instr.is_load:
                self.lq.allocate(instr)
                self.counters.bump("lq.writes")
            elif instr.is_store:
                self.sq.allocate(instr)
                self.counters.bump("sq.writes")
                if self.storesets is not None:
                    self.storesets.store_dispatched(uop.pc, instr.seq)
            self._wire_dependences(instr)
            if uop.dst is not None:
                self.rename[uop.dst] = instr
            self.counters.bump("rename.ops")
            self.counters.bump("rob.writes")
            if instr.pending_ops == 0:
                instr.state = InstrState.READY
                heapq.heappush(self._ready, (instr.seq, instr))
            dispatched += 1

    def _wire_dependences(self, instr: DynInstr) -> None:
        uop = instr.uop
        for reg in uop.srcs:
            producer = self.rename.get(reg)
            if producer is not None and producer.state.value < InstrState.COMPLETED.value:
                producer.consumers.append((instr, "op"))
                instr.pending_ops += 1
        if uop.data_src is not None:
            producer = self.rename.get(uop.data_src)
            if producer is not None and producer.state.value < InstrState.COMPLETED.value:
                producer.consumers.append((instr, "data"))
                instr.pending_data += 1

    # ==================================================================
    # Fetch
    # ==================================================================
    def _stage_fetch(self) -> None:
        cfg = self.config
        if self.fetch_blocked_branch is not None or self.cycle < self.fetch_resume_cycle:
            self.counters.bump("fetch.stall_cycles")
            return
        fetched = 0
        while (
            fetched < cfg.width
            and len(self.fetch_buffer) < cfg.fetch_buffer
            and self.fetch_idx < len(self.trace)
        ):
            uop = self.trace[self.fetch_idx]
            line = uop.pc >> 6
            if line != self._last_fetch_line:
                self.counters.bump("icache.reads")
                lat = self.memory.fetch(uop.pc)
                self._last_fetch_line = line
                if lat > cfg.l1i_latency:
                    # I-cache miss: the line arrives later; retry then.
                    self.fetch_resume_cycle = self.cycle + lat
                    self.counters.bump("fetch.icache_miss")
                    return
            instr = DynInstr(uop, self.fetch_idx, self.next_seq, uses_fp_queue(uop.cls, uop.dst))
            self.next_seq += 1
            instr.fetch_cycle = self.cycle
            if self.tracer is not None:
                self.tracer.record("fetch", instr, self.cycle)
            self.fetch_buffer.append(instr)
            self.fetch_idx += 1
            fetched += 1
            self.counters.bump("fetch.instructions")
            if uop.is_branch:
                predicted_taken, snapshot = self.predictor.predict(uop.pc)
                instr.pred_snapshot = snapshot
                self.counters.bump("bpred.lookups")
                mispredicted = predicted_taken != uop.taken
                instr.mispredicted = mispredicted
                if mispredicted:
                    # Stall-on-mispredict: fetch halts until resolution.
                    # Wrong-path loads issue during the shadow and corrupt
                    # the YLA registers now; recovery repairs them when the
                    # branch resolves (the paper's reset remedy).  Stores
                    # resolving inside the shadow see the corrupted YLA.
                    self.fetch_blocked_branch = instr
                    for age, addr in self.wrongpath.loads_for_mispredict(instr.seq):
                        self.scheme.on_wrongpath_load(age, addr)
                    return
                if predicted_taken and self.predictor.btb.lookup(uop.pc) is None:
                    # Misfetch: direction right but no target until decode —
                    # a short front-end bubble, not a full resolution stall.
                    self.counters.bump("branch.misfetches")
                    self.fetch_resume_cycle = self.cycle + 2
                    return
                if uop.taken:
                    # Correctly predicted taken branch ends the fetch group.
                    return

    # ==================================================================
    # Squash / replay
    # ==================================================================
    def _squash_from(self, instr: DynInstr) -> None:
        """Squash ``instr`` and everything younger; refetch from its slot."""
        self._squashed_this_cycle = True
        boundary = instr.seq
        if self.storesets is not None:
            if instr.is_load and instr.true_violation_pc >= 0:
                self.storesets.record_violation(instr.uop.pc, instr.true_violation_pc)
            self.storesets.squash(boundary - 1)
        self.fetch_idx = instr.trace_idx
        self._last_fetch_line = -1
        for buffered in self.fetch_buffer:
            buffered.state = InstrState.SQUASHED
        self.fetch_buffer.clear()
        squashed = self.rob.squash_younger(lambda e: e.seq < boundary)
        squashed_loads: List[DynInstr] = []
        for victim in squashed:
            victim.state = InstrState.SQUASHED
            if self.tracer is not None:
                self.tracer.record("squash", victim, self.cycle)
            self._free_iq_entry(victim)
            if victim.uop.dst is not None:
                (self.regs_fp if victim.uop.dst >= 32 else self.regs_int).release()
            if victim.is_load and victim.issue_cycle >= 0:
                squashed_loads.append(victim)
            self.counters.bump("squash.instructions")
        self.lq.squash_younger(boundary - 1)
        self.sq.squash_younger(boundary - 1)
        self.rename.clear()
        for survivor in self.rob:
            if survivor.uop.dst is not None:
                self.rename[survivor.uop.dst] = survivor
        self.scheme.on_squash(boundary - 1, squashed_loads)
        if self.fetch_blocked_branch is not None and self.fetch_blocked_branch.squashed:
            self.fetch_blocked_branch = None
        self.fetch_resume_cycle = self.cycle + self.config.replay_penalty
        streak = self._replay_streak.get(instr.trace_idx, 0) + 1
        self._replay_streak[instr.trace_idx] = streak
        if streak >= self.config.replay_guard:
            self._force_nonspec.add(instr.trace_idx)
            self.counters.bump("replay.guard_trips")

    # ==================================================================
    # Coherence traffic injection
    # ==================================================================
    def _inject_invalidations(self) -> None:
        line = self.invalidations.maybe_invalidate()
        if line is None:
            return
        self.counters.bump("inv.injected")
        self.memory.invalidate(line)
        head = self.rob.head()
        oldest = head.seq if head is not None else self.next_seq
        self.scheme.on_invalidation(line, self.config.l2_line_bytes, self.cycle, oldest)

    # ==================================================================
    # Results
    # ==================================================================
    def _build_result(self) -> SimulationResult:
        self.counters["cycles"] = self.cycle
        self.counters["checking.cycles_observed"] = self._checking_cycles
        self.counters["lq.searches_assoc"] = self.lq.searches
        self.counters["lq.searches_filtered"] = self.lq.searches_filtered
        self.counters["lq.inv_searches"] = self.lq.inv_searches
        self.counters["sq.searches_assoc"] = self.sq.searches
        self.counters["bpred.mispredicts"] = self.predictor.mispredictions
        self.counters["wrongpath.loads"] = self.wrongpath.injected
        if self.storesets is not None:
            self.counters["storesets.violations_recorded"] = self.storesets.violations_recorded
            self.counters["storesets.merges"] = self.storesets.merges
        self.counters["dcache.accesses"] = self.memory.l1d.accesses
        self.counters["dcache.misses"] = self.memory.l1d.misses
        self.counters["icache.accesses"] = self.memory.l1i.accesses
        self.counters["icache.misses"] = self.memory.l1i.misses
        self.counters["l2.accesses"] = self.memory.l2.accesses
        self.counters["l2.misses"] = self.memory.l2.misses
        self.scheme.collect()
        self.counters.merge(self.scheme.stats)
        return SimulationResult(
            workload=self.trace.name,
            group=self.trace.group,
            config_name=self.config.name,
            scheme_name=self.scheme.name,
            cycles=self.cycle,
            committed=self.committed,
            counters=self.counters,
            window_instrs=self.scheme.window_instrs,
            window_loads=self.scheme.window_loads,
            window_safe_loads=self.scheme.window_safe_loads,
            window_unsafe_stores=self.scheme.window_unsafe_stores,
        )
