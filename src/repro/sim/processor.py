"""Trace-driven cycle-level out-of-order pipeline.

Models an 8-wide superscalar core in the style of SimpleScalar's
out-of-order simulator, as configured in the paper's Table 1:

* fetch through an I-cache with a combined bimodal/gshare predictor and
  BTB; fetch stalls at a mispredicted (or BTB-missing taken) branch and
  resumes ``branch_penalty`` cycles after the branch resolves — the
  standard trace-driven treatment of wrong-path execution.  Wrong-path
  *loads* still matter to the paper (they corrupt YLA), so their effect is
  injected by :class:`~repro.frontend.wrongpath.WrongPathModel`;
* rename/dispatch into ROB + split INT/FP issue queues + LQ/SQ, blocking
  on any full resource;
* oldest-first issue with functional-unit and D-cache-port bandwidth;
  loads issue speculatively past unresolved older stores, forward from the
  SQ, or are rejected and retried (POWER4-style);
* in-order commit; stores write the D-cache at commit;
* memory-ordering violations cause a squash-and-refetch from the violating
  load (execution-time for conventional schemes, commit-time for DMDC).

A simulator-side ground-truth checker flags every *true* premature load at
store resolution; any scheme that lets such a load retire un-replayed
raises :class:`~repro.errors.OrderingViolationMissed`.  The flags also feed
DMDC's replay taxonomy (Tables 3/5 of the paper).

Performance: the cycle loop has a fast path (see
``docs/performance.md``) — an event-horizon skipper jumps over stretches
of provably idle cycles, hot-path counters live in pre-bound integer
slots (:class:`~repro.stats.counters.HotCounters`), and the LSQ searches
run allocation-free.  ``REPRO_NO_FASTPATH=1`` disables the cycle skipper;
results are bit-identical either way (enforced by
``tests/test_fastpath_equivalence.py``).
"""

import heapq
import os
import time
from collections import deque
from typing import Dict, List, Optional, Set

from repro.backend.dyninst import DynInstr, InstrState
from repro.backend.resources import FunctionalUnits, PhysRegFile
from repro.coherence.injector import InvalidationInjector
from repro.core.schemes import CommitDecision, build_scheme
from repro.core.storesets import StoreSetPredictor
from repro.core.schemes.conventional import ConventionalScheme
from repro.errors import OrderingViolationMissed, SimulationError
from repro.frontend.branch_predictor import CombinedPredictor
from repro.frontend.wrongpath import WrongPathModel
from repro.isa.opcodes import InstrClass
from repro.isa.trace import Trace
from repro.lsq.queues import ForwardAction, LoadQueue, StoreQueue
from repro.mem.hierarchy import MemoryHierarchy
from repro.sim.config import MachineConfig
from repro.sim.result import SimulationResult
from repro.sim.soa import SoaKernel, soa_enabled
from repro.stats.counters import CounterSet, HotCounters
from repro.utils.rng import DeterministicRng
from repro.utils.ring import RingBuffer

#: Environment escape hatch: set to any non-empty value to force every
#: cycle to be stepped individually (used by the equivalence tests).
NO_FASTPATH_ENV = "REPRO_NO_FASTPATH"

_INF = float("inf")

# Enum members hoisted to module level: attribute access on an Enum class
# goes through a metaclass descriptor, which is measurable inside the
# per-cycle loops.  Members are singletons, so identity tests are exact.
_DISPATCHED = InstrState.DISPATCHED
_READY = InstrState.READY
_ISSUED = InstrState.ISSUED
_COMPLETED = InstrState.COMPLETED
_COMMITTED = InstrState.COMMITTED
_SQUASHED = InstrState.SQUASHED
_FWD_FORWARD = ForwardAction.FORWARD
_FWD_REJECT = ForwardAction.REJECT
_FWD_CACHE = ForwardAction.CACHE
_CLS_STORE = InstrClass.STORE
_CLS_LOAD = InstrClass.LOAD


class Processor:
    """One core running one trace under one dependence-checking scheme."""

    def __init__(self, config: MachineConfig, trace: Trace, seed: int = 1):
        self.config = config
        self.trace = trace
        self.rng = DeterministicRng(seed, f"proc:{trace.name}")

        self.predictor = CombinedPredictor(
            bimodal_entries=config.bimodal_entries,
            gshare_entries=config.gshare_entries,
            history_bits=config.gshare_history,
            meta_entries=config.meta_entries,
            btb_entries=config.btb_entries,
            btb_assoc=config.btb_assoc,
        )
        self.memory = MemoryHierarchy(
            config.l1i_config(), config.l1d_config(), config.l2_config(),
            config.memory_latency,
        )
        self.fus = FunctionalUnits(
            config.int_alu, config.int_muldiv, config.fp_alu, config.fp_muldiv
        )
        self.regs_int = PhysRegFile(config.regs_int)
        self.regs_fp = PhysRegFile(config.regs_fp)
        self.rob: RingBuffer = RingBuffer(config.rob_size)
        self.lq = LoadQueue(config.lq_size)
        self.sq = StoreQueue(config.sq_size)
        self.scheme = build_scheme(config.scheme, config)
        if isinstance(self.scheme, ConventionalScheme):
            self.scheme.attach(self.lq, self.sq, config.l2_line_bytes)
        elif hasattr(self.scheme, "attach_rob"):
            self.scheme.attach_rob(self.rob)
        self.wrongpath = WrongPathModel(
            self.rng.child("wrongpath"),
            mean_loads_per_mispredict=config.wrongpath_mean_loads,
            enabled=config.wrongpath_loads,
        )
        self.storesets = StoreSetPredictor() if config.scheme.store_sets else None
        self.invalidations = InvalidationInjector(
            self.rng.child("invalidations"),
            config.invalidation_rate,
            config.l2_line_bytes,
        )

        # Pipeline state
        self.cycle = 0
        self.next_seq = 0
        self.fetch_idx = 0
        self.fetch_buffer: deque = deque()
        self.fetch_resume_cycle = 0
        self.fetch_blocked_branch: Optional[DynInstr] = None
        self._last_fetch_line = -1
        self.rename: Dict[int, DynInstr] = {}
        self.iq_int_count = 0
        self.iq_fp_count = 0
        self._ready: List = []  # heap of (seq, DynInstr)
        # Cycle-keyed event schedules.  The companion key-heaps track the
        # earliest pending cycle incrementally (one heap entry per live
        # key), which is what lets the fast path find the event horizon in
        # O(1) instead of scanning the dicts.
        self._completions: Dict[int, List[DynInstr]] = {}
        self._completion_keys: List[int] = []
        self._retries: Dict[int, List[DynInstr]] = {}
        self._retry_keys: List[int] = []
        self.committed = 0
        self._commit_target = _INF
        self._cycle_limit = _INF
        self.counters = CounterSet()
        self.hot = HotCounters()
        self._checking_cycles = 0
        self._replay_streak: Dict[int, int] = {}
        self._force_nonspec: Set[int] = set()
        self._squashed_this_cycle = False
        #: Idle cycles jumped over by the fast path (diagnostic only —
        #: deliberately NOT a counter, so results stay bit-identical with
        #: the fast path disabled).
        self.fast_forwarded_cycles = 0
        #: Fast path gate: off via env, and off whenever the invalidation
        #: injector is live (it draws from the RNG every cycle, so skipped
        #: cycles would change the random stream).
        # repro: noqa[REPRO011] — a debug kill-switch, deliberately outside
        # EngineOptions: it must work even when options plumbing is what
        # is being debugged, and bench.py reports it alongside the knobs.
        self._fastpath = (  # repro: noqa[REPRO011]
            not os.environ.get(NO_FASTPATH_ENV)
            and not self.invalidations.enabled
        )
        #: Cached injector gate: when off, the per-cycle injection call and
        #: the per-load address tracking are provably dead and skipped.
        self._inv_enabled = self.invalidations.enabled
        # Hot-path caches: config scalars and the stable backing lists of
        # the age-ordered queues, bound once so the per-cycle loops touch
        # locals instead of attribute chains.  RingBuffer documents its
        # ``items`` list object as stable for the buffer's lifetime.
        self._width = config.width
        self._decode_latency = config.decode_latency
        self._fetch_cap = config.fetch_buffer
        self._iq_int_cap = config.iq_int
        self._iq_fp_cap = config.iq_fp
        self._ports = config.dcache_ports
        self._reject_delay = config.reject_retry_delay
        self._fwd_latency = 1 + config.l1d_latency
        self._l1i_latency = config.l1i_latency
        self._sq_filter = config.scheme.sq_filter
        self._rob_items = self.rob.items
        self._rob_cap = config.rob_size
        self._lq_items = self.lq.ring.items
        self._lq_cap = config.lq_size
        self._sq_items = self.sq.ring.items
        self._sq_cap = config.sq_size
        self._sq_by_seq = self.sq.by_seq
        self._trace_ops = trace.ops
        self._trace_len = len(trace)
        self._fu_latency_by_cls = self.fus.latency_by_cls
        #: Optional PipelineTracer; when set, every pipeline event is recorded.
        self.tracer = None
        #: Optional replay-cause observer (an
        #: :class:`~repro.obs.recorder.ObservabilityRecorder`): when set,
        #: every replay is reported with its detection site.  Like the
        #: tracer, the seam is an ``is None`` test — zero cost when off.
        self.obs = None
        #: Attached observers (sanitizers, probes).  Any entry — like a
        #: tracer — disables the event-horizon cycle skipper: hooks observe
        #: per-event state and must never run under skipped cycles
        #: (regression-pinned by ``tests/test_hooks_fastpath.py``).
        self._hooks: List[object] = []
        #: SoA kernel gate (env, read once per processor like the fast
        #: path's) and reusable slot-pool buffers.  ``run_many`` seeds
        #: ``soa_buffers`` so same-geometry batch elements share one
        #: allocation; otherwise the first eligible :meth:`run` fills it.
        self._soa_requested = soa_enabled()
        self.soa_buffers = None
        #: Which cycle loop the last :meth:`run` used (``"soa"`` or
        #: ``"object"``) — bench/result provenance, like ``fastpath_enabled``.
        self.kernel_used = "object"

    def attach_hook(self, hook: object) -> None:
        """Register an observer for this run (see ``docs/correctness.md``).

        The only seam for attaching sanitizers/probes: registration is what
        turns the cycle skipper off, so a hook attached any other way would
        silently miss skipped cycles.  Attaching the same hook twice keeps
        one registration per call, but the skipper gate is membership-based
        (``not self._hooks``), so any number of hooks disables it exactly
        once and detaching the last one restores it.
        """
        self._hooks.append(hook)

    def detach_hook(self, hook: object) -> None:
        """Remove one previously attached observer.

        Once the last hook is detached (and no tracer is set) the
        event-horizon cycle skipper resumes — the gate in :meth:`step`
        re-evaluates ``self._hooks`` every cycle.
        """
        self._hooks.remove(hook)

    @property
    def fastpath_enabled(self) -> bool:
        """True when the idle-cycle skipper may currently run.

        Mirrors the gate in :meth:`step`: the env/injector switch set at
        construction, no tracer, and no attached hooks.  Diagnostic —
        bench provenance and the hook-interaction tests read it.
        """
        return self._fastpath and self.tracer is None and not self._hooks

    # ==================================================================
    # Public driver
    # ==================================================================
    def prewarm(self, instructions: Optional[int] = None) -> None:
        """Functionally warm the I-cache, L2 code lines, and branch predictor.

        The paper measures 100M-instruction SimPoints where front-end
        structures are in steady state; short Python-scale runs would
        otherwise spend most of their cycles on cold code misses.  Data
        caches are deliberately *not* prewarmed — data-stream misses are a
        real steady-state effect the timing run must see.
        """
        n = len(self.trace) if instructions is None else min(instructions, len(self.trace))
        predictor = self.predictor
        memory = self.memory
        btb_install = predictor.btb.install
        for uop in self.trace.ops[:n]:
            memory.fetch(uop.pc)
            if uop.is_branch:
                _, snapshot = predictor.predict(uop.pc)
                predictor.resolve(uop.pc, uop.taken, snapshot)
                if uop.taken:
                    btb_install(uop.pc, uop.target)
        # The warm-up should not leak into reported statistics.
        memory.l1i.hits = memory.l1i.misses = memory.l1i.evictions = 0
        memory.l2.hits = memory.l2.misses = memory.l2.evictions = 0
        predictor.lookups = 0
        predictor.mispredictions = 0
        predictor.btb.hits = predictor.btb.misses = 0

    def run(self, max_instructions: int, max_cycles: Optional[int] = None) -> SimulationResult:
        """Simulate until ``max_instructions`` commit (or trace/cycles end)."""
        if max_cycles is None:
            max_cycles = max(200_000, max_instructions * 60)
        target = min(max_instructions, len(self.trace))
        self._commit_target = target
        self._cycle_limit = max_cycles
        # Kernel construction (trace column decode, slot-pool allocation)
        # happens before the clock starts: like trace generation it is
        # per-trace setup amortised across runs, not cycle-loop work, and
        # ``sim_seconds`` is defined as the cost of the cycle loop alone.
        kernel = self._soa_kernel()
        # Wall-clock is measurement-only (sim_seconds for the perf harness);
        # it never feeds back into simulated state.
        t0 = time.perf_counter()  # repro: noqa[REPRO001]
        if kernel is not None:
            self.kernel_used = "soa"
            kernel.run(target, max_cycles)
        else:
            self.kernel_used = "object"
            while self.committed < target:
                self.step()
                if self.cycle > max_cycles:
                    raise SimulationError(
                        f"no forward progress: {self.committed}/{target} committed "
                        f"after {self.cycle} cycles on {self.trace.name}"
                    )
        sim_seconds = time.perf_counter() - t0  # repro: noqa[REPRO001]
        self.scheme.finalize(self.cycle)
        result = self._build_result()
        result.sim_seconds = sim_seconds
        return result

    def _soa_kernel(self) -> Optional[SoaKernel]:
        """A bound SoA kernel when this run may use one, else None.

        The SoA loop is engaged only from :meth:`run` on a *fresh*
        processor (prewarm is fine — it is functional-only), with every
        observability seam closed: a tracer, attached hook, or obs
        recorder needs the per-object slow path (see
        ``docs/performance.md``), the invalidation injector draws RNG
        per cycle the kernel does not model, and a scheme without a
        slot-array adapter (``soa_hooks() is None``) falls back too.
        """
        if not (
            self._soa_requested
            and self.tracer is None
            and not self._hooks
            and self.obs is None
            and self.scheme.obs is None
            and not self._inv_enabled
            and self.cycle == 0
            and self.committed == 0
            and self.fetch_idx == 0
        ):
            return None
        kernel = SoaKernel(self, self.soa_buffers)
        if kernel.hooks is None:
            return None
        self.soa_buffers = kernel.b
        return kernel

    def step(self) -> None:
        """Advance one cycle (commit -> writeback -> issue -> dispatch -> fetch).

        With the fast path enabled, a step may first jump ``self.cycle``
        over a stretch of provably idle cycles (see
        :meth:`_maybe_fast_forward`) and then execute the next cycle in
        which any stage can act.  Cycle numbering, counters and RNG streams
        are exactly as if every skipped cycle had been stepped.
        """
        if self._fastpath and self.tracer is None and not self._hooks:
            self._maybe_fast_forward()
        self._squashed_this_cycle = False
        if self.scheme.checking_active:
            self._checking_cycles += 1
        cycle = self.cycle
        # Each stage is gated on the cheap "can it possibly act?" test so an
        # idle stage costs one comparison instead of a call + prologue.  The
        # gates read the same state the stage's own early-exit would.
        rob_items = self._rob_items
        if rob_items and rob_items[0].state is _COMPLETED:
            self._stage_commit()
        events = self._completions.pop(cycle, None)
        if events is not None:
            self._stage_complete(events)
        if self._ready or self._retries:
            self._stage_issue()
        if self.fetch_buffer:
            self._stage_dispatch()
        if self.fetch_blocked_branch is not None or cycle < self.fetch_resume_cycle:
            self.hot.fetch_stall_cycles += 1
        elif len(self.fetch_buffer) < self._fetch_cap and self.fetch_idx < self._trace_len:
            self._stage_fetch()
        if self._inv_enabled:
            self._inject_invalidations()
        self.cycle += 1

    # ==================================================================
    # Event-horizon fast forward
    # ==================================================================
    def _next_event_cycle(self, keys: List[int], schedule: Dict[int, list]) -> float:
        """Earliest live cycle in ``schedule`` (inf if none), via its key-heap."""
        while keys and keys[0] not in schedule:
            heapq.heappop(keys)  # key already drained by its stage
        return keys[0] if keys else _INF

    def _maybe_fast_forward(self) -> None:
        """Jump ``self.cycle`` to the next cycle in which any stage can act.

        Legal only when the current architectural state provably freezes
        until a scheduled event: no instruction is ready to issue, the ROB
        head cannot commit, dispatch and fetch are blocked on conditions
        that only an event (completion, retry, timer) can clear.  During
        the skipped stretch the only per-cycle observables are the idle
        bookkeeping counters (fetch/dispatch stall cycles, checking-mode
        cycles); those are accounted in closed form below, so a skip is
        indistinguishable from stepping each cycle (the invariant the
        equivalence suite pins down).
        """
        if self._ready:
            return  # something can issue this cycle
        rob_items = self._rob_items
        if rob_items and rob_items[0].state is _COMPLETED:
            return  # commit can act this cycle
        cycle = self.cycle
        # Normal stepping would run up to (and including) cycle_limit + 1
        # before the driver raises; never skip past that horizon so the
        # no-forward-progress error fires with identical cycle counts.
        target = self._cycle_limit + 1
        t = self._next_event_cycle(self._completion_keys, self._completions)
        if t < target:
            target = t
        t = self._next_event_cycle(self._retry_keys, self._retries)
        if t < target:
            target = t
        stall_slot = None
        buf = self.fetch_buffer
        if buf:
            first = buf[0]
            decode_ready = first.fetch_cycle + self._decode_latency
            if cycle < decode_ready:
                if decode_ready < target:
                    target = decode_ready
            else:
                stall_slot = self._dispatch_stall_slot(first)
                if stall_slot is None:
                    return  # dispatch can act this cycle
        blocked = self.fetch_blocked_branch is not None
        resume = self.fetch_resume_cycle
        if (
            not blocked
            and len(buf) < self._fetch_cap
            and self.fetch_idx < self._trace_len
        ):
            if cycle >= resume:
                return  # fetch can act this cycle
            if resume < target:
                target = resume
        skipped = target - cycle
        if skipped < 1 or target == _INF:
            return  # an event fires this very cycle (or nothing ever
            #         happens: the driver's cycle-limit guard handles it)
        # --- closed-form accounting for the skipped idle cycles ---------
        if self.scheme.checking_active:
            self._checking_cycles += skipped
        hot = self.hot
        if blocked:
            hot.fetch_stall_cycles += skipped
        elif resume > cycle:
            hot.fetch_stall_cycles += (resume if resume < target else target) - cycle
        if stall_slot is not None:
            setattr(hot, stall_slot, getattr(hot, stall_slot) + skipped)
        self.fast_forwarded_cycles += skipped
        self.cycle = target

    def _dispatch_stall_slot(self, instr: DynInstr) -> Optional[str]:
        """The HotCounters slot dispatch would bump for ``instr`` this
        cycle, or None when dispatch could actually proceed.

        Mirrors the resource checks of :meth:`_stage_dispatch` in order,
        with no side effects (the register check inspects the free list
        instead of allocating).
        """
        if len(self._rob_items) >= self._rob_cap:
            return "stall_rob_full"
        if instr.fp_side:
            if self.iq_fp_count >= self._iq_fp_cap:
                return "stall_iq_full"
        elif self.iq_int_count >= self._iq_int_cap:
            return "stall_iq_full"
        if instr.is_load and len(self._lq_items) >= self._lq_cap:
            return "stall_lq_full"
        if instr.is_store and len(self._sq_items) >= self._sq_cap:
            return "stall_sq_full"
        if instr.uop.dst is not None:
            regs = self.regs_fp if instr.uop.dst >= 32 else self.regs_int
            if regs.free <= 0:
                return "stall_regs_full"
        return None

    # ==================================================================
    # Event scheduling
    # ==================================================================
    def _schedule_completion(self, cycle: int, instr: DynInstr) -> None:
        events = self._completions.get(cycle)
        if events is None:
            self._completions[cycle] = [instr]
            heapq.heappush(self._completion_keys, cycle)
        else:
            events.append(instr)

    def _schedule_retry(self, cycle: int, load: DynInstr) -> None:
        events = self._retries.get(cycle)
        if events is None:
            self._retries[cycle] = [load]
            heapq.heappush(self._retry_keys, cycle)
        else:
            events.append(load)

    # ==================================================================
    # Commit
    # ==================================================================
    def _stage_commit(self) -> None:
        rob_items = self._rob_items
        scheme = self.scheme
        cycle = self.cycle
        for _ in range(self._width):
            if self.committed >= self._commit_target:
                return
            if not rob_items:
                break
            head = rob_items[0]
            if head.state is not _COMPLETED:
                break
            decision = scheme.on_commit(head, cycle)
            if decision == CommitDecision.REPLAY:
                self.hot.replays += 1
                self.hot.replays_commit_time += 1
                if self.tracer is not None:
                    self.tracer.record("replay", head, cycle)
                if self.obs is not None:
                    self.obs.replay(head, "commit", cycle)
                self._squash_from(head)
                return
            if head.is_load and head.true_violation_store >= 0:
                raise OrderingViolationMissed(
                    f"load seq={head.seq} addr={head.addr:#x} retired despite a "
                    f"premature issue past store seq={head.true_violation_store} "
                    f"under scheme {scheme.name}"
                )
            self._retire(head)

    def _retire(self, instr: DynInstr) -> None:
        instr.state = _COMMITTED
        instr.commit_cycle = self.cycle
        if self.tracer is not None:
            self.tracer.record("commit", instr, self.cycle)
        self._rob_items.pop(0)
        hot = self.hot
        uop = instr.uop
        if uop.dst is not None:
            (self.regs_fp if uop.dst >= 32 else self.regs_int).release()
            if self.rename.get(uop.dst) is instr:
                del self.rename[uop.dst]
        if instr.is_load:
            lq_items = self._lq_items
            if not lq_items or lq_items[0] is not instr:
                raise AssertionError("LQ retired out of order")
            lq_items.pop(0)
            hot.commit_loads += 1
            if self.scheme.reexecutes_loads:
                # Value-based checking: every load re-accesses the cache.
                self.memory.read(instr.addr)
                hot.dcache_reexecutions += 1
            if instr.safe:
                hot.commit_safe_loads += 1
        elif instr.is_store:
            self.sq.retire_head(instr)
            self.memory.write(instr.addr)
            hot.commit_stores += 1
        elif instr.is_branch:
            hot.commit_branches += 1
        self.committed += 1
        hot.commit_instructions += 1
        self._replay_streak.pop(instr.trace_idx, None)
        self._force_nonspec.discard(instr.trace_idx)

    # ==================================================================
    # Writeback / completion
    # ==================================================================
    def _stage_complete(self, events: List[DynInstr]) -> None:
        """Writeback for the completions scheduled at the current cycle
        (already popped from the schedule by :meth:`step`)."""
        cycle = self.cycle
        hot = self.hot
        for instr in events:
            state = instr.state
            if state is _SQUASHED or state is _COMPLETED:
                continue
            instr.state = _COMPLETED
            instr.complete_cycle = cycle
            if self.tracer is not None:
                self.tracer.record("complete", instr, cycle)
            if instr.uop.dst is not None:
                hot.regfile_writes += 1
            if instr.consumers:
                self._wake_consumers(instr)
            if instr.is_branch:
                self._resolve_branch(instr)

    def _wake_consumers(self, producer: DynInstr) -> None:
        consumers = producer.consumers
        hot = self.hot
        ready = self._ready
        for consumer, kind in consumers:
            if consumer.state is _SQUASHED:
                continue
            hot.iq_wakeups += 1
            if kind == "op":
                consumer.pending_ops -= 1
                if consumer.pending_ops == 0 and consumer.state is _DISPATCHED:
                    consumer.state = _READY
                    heapq.heappush(ready, (consumer.seq, consumer))
            else:  # store data
                consumer.pending_data -= 1
                if (
                    consumer.pending_data == 0
                    and consumer.is_store
                    and consumer.resolve_cycle >= 0
                    and consumer.state is _ISSUED
                ):
                    self._schedule_completion(self.cycle + 1, consumer)
        consumers.clear()

    def _resolve_branch(self, branch: DynInstr) -> None:
        uop = branch.uop
        mispredicted = self.predictor.resolve(uop.pc, uop.taken, branch.pred_snapshot)
        if uop.taken:
            self.predictor.btb.install(uop.pc, uop.target)
        if self.fetch_blocked_branch is branch:
            self.fetch_blocked_branch = None
            self.fetch_resume_cycle = self.cycle + self.config.branch_penalty
            if mispredicted:
                self.hot.branch_mispredicts += 1
                self.scheme.on_recovery(branch.seq)
            else:
                self.hot.branch_misfetches += 1

    # ==================================================================
    # Issue / execute
    # ==================================================================
    def _stage_issue(self) -> None:
        cycle = self.cycle
        ready = self._ready
        retries = self._retries.pop(cycle, None)
        if retries is not None:
            for load in retries:
                if load.state is _READY:
                    heapq.heappush(ready, (load.seq, load))
        if not ready:
            return  # nothing to issue: the FU reset below would be a no-op
        fus = self.fus
        fus.new_cycle()
        width = self._width
        ports_left = self._ports
        issued = 0
        # One small list per non-idle issue cycle; accepted (the heap pops
        # below need somewhere allocation-order-independent to park
        # bandwidth-deferred entries).
        deferred: List[DynInstr] = []  # repro: noqa[REPRO005]
        while ready and issued < width:
            _, instr = heapq.heappop(ready)
            if instr.state is not _READY:
                continue
            if instr.is_load:
                outcome, ports_left = self._try_issue_load(instr, ports_left, deferred)
                if outcome:
                    issued += 1
                if self._squashed_this_cycle:
                    break
            elif instr.is_store:
                if not fus.try_acquire(_CLS_STORE):
                    deferred.append(instr)
                    continue
                self._issue_store(instr)
                issued += 1
                if self._squashed_this_cycle:
                    break
            else:
                if not fus.try_acquire(instr.uop.cls):
                    deferred.append(instr)
                    continue
                self._issue_alu(instr)
                issued += 1
        for instr in deferred:
            heapq.heappush(ready, (instr.seq, instr))

    def _free_iq_entry(self, instr: DynInstr) -> None:
        if instr.in_iq:
            instr.in_iq = False
            if instr.fp_side:
                self.iq_fp_count -= 1
            else:
                self.iq_int_count -= 1

    def _issue_alu(self, instr: DynInstr) -> None:
        cycle = self.cycle
        instr.state = _ISSUED
        instr.issue_cycle = cycle
        if self.tracer is not None:
            self.tracer.record("issue", instr, cycle)
        if instr.in_iq:  # _free_iq_entry, inlined (hot leaf)
            instr.in_iq = False
            if instr.fp_side:
                self.iq_fp_count -= 1
            else:
                self.iq_int_count -= 1
        hot = self.hot
        hot.issue_instructions += 1
        hot.regfile_reads += len(instr.uop.srcs)
        hot.fu_ops += 1
        when = cycle + self._fu_latency_by_cls[instr.uop.cls]
        completions = self._completions
        events = completions.get(when)
        if events is None:
            completions[when] = [instr]
            heapq.heappush(self._completion_keys, when)
        else:
            events.append(instr)

    def _issue_store(self, store: DynInstr) -> None:
        """AGU issue: the store's address resolves now."""
        store.state = _ISSUED
        store.issue_cycle = self.cycle
        store.resolve_cycle = self.cycle
        if self.tracer is not None:
            self.tracer.record("issue", store, self.cycle)
        self._free_iq_entry(store)
        hot = self.hot
        hot.issue_stores += 1
        hot.regfile_reads += len(store.uop.srcs)
        if self.storesets is not None:
            self.storesets.store_resolved(store.uop.pc, store.seq)
        self._ground_truth_store_resolve(store)
        if store.pending_data == 0:
            self._schedule_completion(self.cycle + 1, store)
        # else: completion is scheduled when the data producer completes.
        victim = self.scheme.on_store_resolve(store, self.cycle)
        if victim is not None and not victim.squashed:
            hot.replays += 1
            hot.replays_execution_time += 1
            if self.tracer is not None:
                self.tracer.record("replay", victim, self.cycle)
            if self.obs is not None:
                self.obs.replay(victim, "execution", self.cycle)
            self._squash_from(victim)

    def _ground_truth_store_resolve(self, store: DynInstr) -> None:
        """Flag younger loads that truly issued prematurely past this store.

        A load is exempt when it forwarded from a store *younger* than this
        one that fully covered it (its data cannot be stale).
        """
        s_addr, s_seq = store.addr, store.seq
        s_end = s_addr + store.size
        sq_by_seq = self._sq_by_seq
        for load in self._lq_items:
            if load.seq > s_seq and load.issue_cycle >= 0:
                l_addr = load.addr
                l_end = l_addr + load.size
                if (
                    s_addr < l_end
                    and l_addr < s_end
                    and load.state is not _COMMITTED
                    and load.true_violation_store < 0
                ):
                    if load.forward_store_seq > s_seq:
                        fwd = sq_by_seq.get(load.forward_store_seq)
                        if (
                            fwd is not None
                            and fwd.addr <= l_addr
                            and l_end <= fwd.addr + fwd.size
                        ):
                            continue
                    load.true_violation_store = s_seq
                    load.true_violation_pc = store.uop.pc
                    self.hot.groundtruth_violations += 1

    def _try_issue_load(self, load: DynInstr, ports_left: int, deferred: List[DynInstr]):
        """Attempt to issue one load; returns (issued?, ports_left)."""
        hot = self.hot
        if load.trace_idx in self._force_nonspec and self.sq.oldest_unresolved_seq() is not None:
            # Livelock guard: after repeated replays this load waits until
            # every older store has resolved (it then issues as a safe load).
            self._schedule_retry(self.cycle + 1, load)
            return False, ports_left
        if self.storesets is not None:
            blocker = self.storesets.blocking_store(load.uop.pc, load.seq)
            if blocker is not None:
                # Predicted dependent on an in-flight unresolved store: wait.
                hot.storesets_load_delays += 1
                self._schedule_retry(self.cycle + 2, load)
                return False, ports_left
        if ports_left <= 0:
            deferred.append(load)
            return False, ports_left
        if not self.fus.try_acquire(_CLS_LOAD):
            deferred.append(load)
            return False, ports_left

        # Section 3 extension: a load older than every in-flight store can
        # skip the SQ search (tracked by an oldest-store-age register).
        sq = self.sq
        sq_items = self._sq_items
        if self._sq_filter and (not sq_items or load.seq < sq_items[0].seq):
            sq.searches_filtered += 1
            result_action = _FWD_CACHE
            all_older_resolved = True
            fwd_store = None
        else:
            result_action, fwd_store, all_older_resolved = sq.search_for_forwarding(load)
            hot.sq_searches += 1

        if result_action is _FWD_REJECT:
            load.rejections += 1
            hot.load_rejections += 1
            if self.tracer is not None:
                self.tracer.record("reject", load, self.cycle)
            self._schedule_retry(self.cycle + self._reject_delay, load)
            return True, ports_left  # consumed bandwidth this cycle

        load.state = _ISSUED
        load.issue_cycle = self.cycle
        if self.tracer is not None:
            self.tracer.record("issue", load, self.cycle)
        self._free_iq_entry(load)
        hot.issue_loads += 1
        hot.regfile_reads += len(load.uop.srcs)
        load.speculative_issue = not all_older_resolved
        load.safe = all_older_resolved
        if load.trace_idx in self._force_nonspec and all_older_resolved:
            # Guard-tripped loads issued with every older store resolved are
            # provably violation-free; they bypass commit-time checking even
            # when the safe-load optimisation is disabled (ablation), which
            # guarantees forward progress.
            load.guard_bypass = True
        if load.safe:
            hot.load_safe_at_issue += 1
        self.wrongpath.observe_address(load.addr)
        if self._inv_enabled:
            self.invalidations.observe(load.addr)

        if result_action is _FWD_FORWARD:
            load.forward_store_seq = fwd_store.seq
            hot.load_forwarded += 1
            latency = self._fwd_latency
        else:
            ports_left -= 1
            hot.dcache_reads += 1
            latency = 1 + self.memory.read(load.addr)
        self._schedule_completion(self.cycle + latency, load)

        victim = self.scheme.on_load_issue(load, self.cycle)
        if victim is not None and not victim.squashed:
            hot.replays += 1
            hot.replays_coherence += 1
            if self.tracer is not None:
                self.tracer.record("replay", victim, self.cycle)
            if self.obs is not None:
                self.obs.replay(victim, "coherence", self.cycle)
            self._squash_from(victim)
        return True, ports_left

    # ==================================================================
    # Dispatch (rename + allocate)
    # ==================================================================
    def _stage_dispatch(self) -> None:
        buf = self.fetch_buffer
        if not buf:
            return
        cycle = self.cycle
        decode_latency = self._decode_latency
        if cycle < buf[0].fetch_cycle + decode_latency:
            return  # front of the buffer is still in decode
        dispatched = 0
        hot = self.hot
        width = self._width
        rename = self.rename
        ready = self._ready
        rob_items = self._rob_items
        rob_cap = self._rob_cap
        lq_items = self._lq_items
        lq_cap = self._lq_cap
        sq_items = self._sq_items
        sq_cap = self._sq_cap
        iq_fp_cap = self._iq_fp_cap
        iq_int_cap = self._iq_int_cap
        while buf and dispatched < width:
            instr = buf[0]
            if cycle < instr.fetch_cycle + decode_latency:
                break
            uop = instr.uop
            if len(rob_items) >= rob_cap:
                hot.stall_rob_full += 1
                break
            if instr.fp_side:
                if self.iq_fp_count >= iq_fp_cap:
                    hot.stall_iq_full += 1
                    break
            elif self.iq_int_count >= iq_int_cap:
                hot.stall_iq_full += 1
                break
            is_load = instr.is_load
            is_store = instr.is_store
            if is_load and len(lq_items) >= lq_cap:
                hot.stall_lq_full += 1
                break
            if is_store and len(sq_items) >= sq_cap:
                hot.stall_sq_full += 1
                break
            dst = uop.dst
            if dst is not None:
                regs = self.regs_fp if dst >= 32 else self.regs_int
                if not regs.try_allocate():
                    hot.stall_regs_full += 1
                    break

            buf.popleft()
            instr.dispatch_cycle = cycle
            if self.tracer is not None:
                self.tracer.record("dispatch", instr, cycle)
            rob_items.append(instr)  # capacity pre-checked above
            instr.in_iq = True
            if instr.fp_side:
                self.iq_fp_count += 1
            else:
                self.iq_int_count += 1
            if is_load:
                lq_items.append(instr)
                hot.lq_writes += 1
            elif is_store:
                sq_items.append(instr)
                self._sq_by_seq[instr.seq] = instr
                hot.sq_writes += 1
                if self.storesets is not None:
                    self.storesets.store_dispatched(uop.pc, instr.seq)
            # Dependence wiring (inlined — the old _wire_dependences call).
            pending = 0
            for reg in uop.srcs:
                producer = rename.get(reg)
                if producer is not None and producer.state < _COMPLETED:
                    producer.consumers.append((instr, "op"))
                    pending += 1
            instr.pending_ops = pending
            data_src = uop.data_src
            if data_src is not None:
                producer = rename.get(data_src)
                if producer is not None and producer.state < _COMPLETED:
                    producer.consumers.append((instr, "data"))
                    instr.pending_data = 1
            if dst is not None:
                rename[dst] = instr
            if pending == 0:
                instr.state = _READY
                heapq.heappush(ready, (instr.seq, instr))
            dispatched += 1
        if dispatched:
            hot.rename_ops += dispatched
            hot.rob_writes += dispatched

    # ==================================================================
    # Fetch
    # ==================================================================
    def _stage_fetch(self) -> None:
        # step() has already ruled out the stall cases (blocked branch,
        # resume timer) and confirmed buffer room and trace supply.
        cycle = self.cycle
        uops = self._trace_ops
        trace_len = self._trace_len
        buf = self.fetch_buffer
        hot = self.hot
        memory = self.memory
        predictor = self.predictor
        tracer = self.tracer
        l1i_latency = self._l1i_latency
        fetch_cap = self._fetch_cap
        width = self._width
        fetch_idx = self.fetch_idx
        seq = self.next_seq
        last_line = self._last_fetch_line
        fetched = 0
        try:
            while (
                fetched < width
                and len(buf) < fetch_cap
                and fetch_idx < trace_len
            ):
                uop = uops[fetch_idx]
                line = uop.pc >> 6
                if line != last_line:
                    hot.icache_reads += 1
                    lat = memory.fetch(uop.pc)
                    last_line = line
                    if lat > l1i_latency:
                        # I-cache miss: the line arrives later; retry then.
                        self.fetch_resume_cycle = cycle + lat
                        hot.fetch_icache_miss += 1
                        return
                instr = DynInstr(uop, fetch_idx, seq, uop.fp_side)
                seq += 1
                instr.fetch_cycle = cycle
                if tracer is not None:
                    tracer.record("fetch", instr, cycle)
                buf.append(instr)
                fetch_idx += 1
                fetched += 1
                if uop.is_branch:
                    predicted_taken, snapshot = predictor.predict(uop.pc)
                    instr.pred_snapshot = snapshot
                    hot.bpred_lookups += 1
                    mispredicted = predicted_taken != uop.taken
                    instr.mispredicted = mispredicted
                    if mispredicted:
                        # Stall-on-mispredict: fetch halts until resolution.
                        # Wrong-path loads issue during the shadow and corrupt
                        # the YLA registers now; recovery repairs them when the
                        # branch resolves (the paper's reset remedy).  Stores
                        # resolving inside the shadow see the corrupted YLA.
                        self.fetch_blocked_branch = instr
                        for age, addr in self.wrongpath.loads_for_mispredict(instr.seq):
                            self.scheme.on_wrongpath_load(age, addr)
                        return
                    if predicted_taken and predictor.btb.lookup(uop.pc) is None:
                        # Misfetch: direction right but no target until decode —
                        # a short front-end bubble, not a full resolution stall.
                        hot.branch_misfetches += 1
                        self.fetch_resume_cycle = cycle + 2
                        return
                    if uop.taken:
                        # Correctly predicted taken branch ends the fetch group.
                        return
        finally:
            # Localized cursors written back on every exit path.
            self.fetch_idx = fetch_idx
            self.next_seq = seq
            self._last_fetch_line = last_line
            if fetched:
                hot.fetch_instructions += fetched

    # ==================================================================
    # Squash / replay
    # ==================================================================
    def _squash_from(self, instr: DynInstr) -> None:
        """Squash ``instr`` and everything younger; refetch from its slot."""
        self._squashed_this_cycle = True
        boundary = instr.seq
        if self.storesets is not None:
            if instr.is_load and instr.true_violation_pc >= 0:
                self.storesets.record_violation(instr.uop.pc, instr.true_violation_pc)
            self.storesets.squash(boundary - 1)
        self.fetch_idx = instr.trace_idx
        self._last_fetch_line = -1
        for buffered in self.fetch_buffer:
            buffered.state = InstrState.SQUASHED
        self.fetch_buffer.clear()
        squashed = self.rob.squash_younger(lambda e: e.seq < boundary)
        squashed_loads: List[DynInstr] = []
        for victim in squashed:
            victim.state = InstrState.SQUASHED
            if self.tracer is not None:
                self.tracer.record("squash", victim, self.cycle)
            self._free_iq_entry(victim)
            if victim.uop.dst is not None:
                (self.regs_fp if victim.uop.dst >= 32 else self.regs_int).release()
            if victim.is_load and victim.issue_cycle >= 0:
                squashed_loads.append(victim)
            self.hot.squash_instructions += 1
        self.lq.squash_younger(boundary - 1)
        self.sq.squash_younger(boundary - 1)
        self.rename.clear()
        for survivor in self.rob:
            if survivor.uop.dst is not None:
                self.rename[survivor.uop.dst] = survivor
        self.scheme.on_squash(boundary - 1, squashed_loads)
        if self.fetch_blocked_branch is not None and self.fetch_blocked_branch.squashed:
            self.fetch_blocked_branch = None
        self.fetch_resume_cycle = self.cycle + self.config.replay_penalty
        streak = self._replay_streak.get(instr.trace_idx, 0) + 1
        self._replay_streak[instr.trace_idx] = streak
        if streak >= self.config.replay_guard:
            self._force_nonspec.add(instr.trace_idx)
            self.hot.replay_guard_trips += 1

    # ==================================================================
    # Coherence traffic injection
    # ==================================================================
    def _inject_invalidations(self) -> None:
        line = self.invalidations.maybe_invalidate()
        if line is None:
            return
        self.hot.inv_injected += 1
        self.memory.invalidate(line)
        head = self.rob.head()
        oldest = head.seq if head is not None else self.next_seq
        self.scheme.on_invalidation(line, self.config.l2_line_bytes, self.cycle, oldest)

    # ==================================================================
    # Results
    # ==================================================================
    def _build_result(self) -> SimulationResult:
        self.hot.fold_into(self.counters)
        self.counters["cycles"] = self.cycle
        self.counters["checking.cycles_observed"] = self._checking_cycles
        self.counters["lq.searches_assoc"] = self.lq.searches
        self.counters["lq.searches_filtered"] = self.lq.searches_filtered
        self.counters["lq.inv_searches"] = self.lq.inv_searches
        self.counters["sq.searches_assoc"] = self.sq.searches
        self.counters["sq.searches_filtered_age"] = self.sq.searches_filtered
        self.counters["bpred.mispredicts"] = self.predictor.mispredictions
        self.counters["wrongpath.loads"] = self.wrongpath.injected
        if self.storesets is not None:
            self.counters["storesets.violations_recorded"] = self.storesets.violations_recorded
            self.counters["storesets.merges"] = self.storesets.merges
        self.counters["dcache.accesses"] = self.memory.l1d.accesses
        self.counters["dcache.misses"] = self.memory.l1d.misses
        self.counters["icache.accesses"] = self.memory.l1i.accesses
        self.counters["icache.misses"] = self.memory.l1i.misses
        self.counters["l2.accesses"] = self.memory.l2.accesses
        self.counters["l2.misses"] = self.memory.l2.misses
        self.scheme.collect()
        self.counters.merge(self.scheme.stats)
        return SimulationResult(
            workload=self.trace.name,
            group=self.trace.group,
            config_name=self.config.name,
            scheme_name=self.scheme.name,
            cycles=self.cycle,
            committed=self.committed,
            counters=self.counters,
            window_instrs=self.scheme.window_instrs,
            window_loads=self.scheme.window_loads,
            window_safe_loads=self.scheme.window_safe_loads,
            window_unsafe_stores=self.scheme.window_unsafe_stores,
        )
