"""Structure-of-arrays cycle kernel (the batched fast path).

The object-path pipeline in :mod:`repro.sim.processor` spends most of its
time in CPython dispatch: ~50 function calls and attribute chains per
committed instruction.  This module re-expresses the *same* cycle-level
semantics over preallocated parallel arrays:

* every in-flight instruction occupies a **slot** in a fixed pool; all
  per-instruction state (`seq`, `state`, `addr`, timestamps, dependence
  counts) lives in parallel lists indexed by slot;
* the ROB/LQ/SQ are deques of slot numbers in age order, so retire pops
  the head and a squash pops the tail in O(victims), no object walks;
* cycle-indexed ring buffers (completions, retries) carry **encoded
  identity ints** ``(seq << PBITS) | slot`` — scheduling an event is one
  list append, draining a cycle is one indexed read, and a stale event for
  a squashed-and-reused slot is detected by one integer compare instead of
  an object state read;
* the per-stage methods of the object path are fused into one loop in
  :meth:`SoaKernel.run`, and scheme callbacks receive slot indices (see the
  ``soa_hooks`` adapters in :mod:`repro.core.schemes`).

The kernel is **bit-identical** to the object path — same counters, same
cycle counts, same RNG stream — which `tests/test_soa_equivalence.py`
enforces over the full scheme × workload matrix.  It is an optimisation
with an escape hatch, not a fork: set ``REPRO_NO_SOA=1`` (or attach a
tracer / sanitizer hook / observability recorder) and the processor steps
the object path instead.  See ``docs/performance.md``.

Slot identity: a slot is recycled as soon as its instruction retires or is
squashed, and ``next_seq`` never rolls back on a squash, so live sequence
numbers are *not* contiguous — a slot can only be named safely together
with the seq it was bound to.  Hence the encoded ints everywhere an
instruction outlives a queue position (event schedules, the ready heap,
consumer lists, the rename map).
"""

import heapq
import os
from collections import deque
from typing import Dict, List, Optional, Set

from repro.backend.dyninst import InstrState
from repro.backend.resources import FunctionalUnits
from repro.errors import OrderingViolationMissed, SimulationError
from repro.lsq.queues import (
    SOA_CACHE,
    SOA_FORWARD,
    SOA_REJECT,
    sq_forward_search_soa,
)

#: Environment escape hatch: set to any non-empty value to force the
#: object-path pipeline even when a run is otherwise SoA-eligible.
NO_SOA_ENV = "REPRO_NO_SOA"

_ST_DISPATCHED = int(InstrState.DISPATCHED)
_ST_READY = int(InstrState.READY)
_ST_ISSUED = int(InstrState.ISSUED)
_ST_COMPLETED = int(InstrState.COMPLETED)
_ST_COMMITTED = int(InstrState.COMMITTED)
_ST_SQUASHED = int(InstrState.SQUASHED)

#: Dispatch-stall cause codes shared by the inline dispatch stage and the
#: fast-forward probe (mirrors ``Processor._dispatch_stall_slot``).
_STALL_NONE = 0
_STALL_ROB = 1
_STALL_IQ = 2
_STALL_LQ = 3
_STALL_SQ = 4
_STALL_REGS = 5


def soa_enabled() -> bool:
    """The environment gate for the SoA kernel (re-read per processor)."""
    return not os.environ.get(NO_SOA_ENV)  # repro: noqa[REPRO011]


class TraceSoA:
    """Per-trace micro-op fields decoded once into parallel arrays.

    Decoding amortizes across every run of the same trace (all schemes of
    a sweep, every batch element of :func:`repro.sim.runner.run_many`): the
    kernel indexes plain lists instead of touching ``MicroOp`` attributes
    per fetch/dispatch/issue.
    """

    __slots__ = (
        "n", "pc", "line", "fu_pool", "fu_lat", "srcs", "nsrcs", "dst",
        "data_src", "addr", "size", "isld", "isst", "isbr", "fp",
        "taken", "target", "maxreg",
    )

    def __init__(self, ops) -> None:
        n = len(ops)
        self.n = n
        self.pc = pc = [0] * n
        self.line = line = [0] * n
        self.fu_pool = fu_pool = [0] * n
        self.fu_lat = fu_lat = [0] * n
        self.srcs = srcs = [()] * n
        self.nsrcs = nsrcs = [0] * n
        self.dst = dst = [-1] * n
        self.data_src = data_src = [-1] * n
        self.addr = addr = [0] * n
        self.size = size = [0] * n
        self.isld = isld = [False] * n
        self.isst = isst = [False] * n
        self.isbr = isbr = [False] * n
        self.fp = fp = [False] * n
        self.taken = taken = [False] * n
        self.target = target = [0] * n
        pool_index = FunctionalUnits._POOL_INDEX
        latency = FunctionalUnits.latency_by_cls
        maxreg = 0  # sizes the kernel's flat rename table
        for i, uop in enumerate(ops):
            pc[i] = uop.pc
            line[i] = uop.pc >> 6
            cls = uop.cls
            fu_pool[i] = pool_index[cls]
            fu_lat[i] = latency[cls]
            srcs[i] = uop.srcs
            nsrcs[i] = len(uop.srcs)
            for reg in uop.srcs:
                if reg > maxreg:
                    maxreg = reg
            if uop.dst is not None:
                dst[i] = uop.dst
                if uop.dst > maxreg:
                    maxreg = uop.dst
            if uop.data_src is not None:
                data_src[i] = uop.data_src
                if uop.data_src > maxreg:
                    maxreg = uop.data_src
            if uop.mem_addr is not None:
                addr[i] = uop.mem_addr
            if uop.mem_size is not None:
                size[i] = uop.mem_size
            isld[i] = uop.is_load
            isst[i] = uop.is_store
            isbr[i] = uop.is_branch
            fp[i] = uop.fp_side
            taken[i] = uop.taken
            if uop.target is not None:
                target[i] = uop.target
        self.maxreg = maxreg


def trace_soa(trace) -> TraceSoA:
    """Decoded arrays for ``trace``, cached on the trace object."""
    cached = getattr(trace, "_soa_cache", None)
    if cached is None or cached.n != len(trace.ops):
        cached = TraceSoA(trace.ops)
        try:
            trace._soa_cache = cached
        except AttributeError:  # slotted/frozen trace stand-ins: skip cache
            pass
    return cached


class KernelBuffers:
    """Preallocated slot-pool arrays, reusable across same-geometry runs.

    The pool bounds live instructions: at most ``rob_size`` dispatched plus
    ``fetch_buffer`` fetched-but-not-dispatched (an instruction leaves the
    fetch buffer exactly when it enters the ROB).  Buffers carry no
    cross-run state — each :class:`SoaKernel` repopulates the free list and
    every slot field is (re)initialised at fetch time — so
    :func:`repro.sim.runner.run_many` hands one instance to every batch
    element with the same geometry.
    """

    __slots__ = (
        "pool", "pbits", "pmask", "seq", "tidx", "state", "fcyc", "icyc",
        "rcyc", "addr", "size", "isld", "isst", "isbr", "fp", "pops",
        "pdata", "tvs", "tvpc", "fwdseq", "safe", "gbp", "unsafe", "wend",
        "snap", "cons",
    )

    def __init__(self, pool: int) -> None:
        self.pool = pool
        self.pbits = pool.bit_length()
        self.pmask = (1 << self.pbits) - 1
        self.seq = [-1] * pool
        self.tidx = [0] * pool
        self.state = [0] * pool
        self.fcyc = [0] * pool
        self.icyc = [-1] * pool
        self.rcyc = [-1] * pool
        self.addr = [0] * pool
        self.size = [0] * pool
        self.isld = [False] * pool
        self.isst = [False] * pool
        self.isbr = [False] * pool
        self.fp = [False] * pool
        self.pops = [0] * pool
        self.pdata = [0] * pool
        self.tvs = [-1] * pool
        self.tvpc = [-1] * pool
        self.fwdseq = [-1] * pool
        self.safe = [False] * pool
        self.gbp = [False] * pool
        self.unsafe = [False] * pool
        self.wend = [-1] * pool
        self.snap = [None] * pool
        self.cons: List[list] = [[] for _ in range(pool)]

    @classmethod
    def for_config(cls, config) -> "KernelBuffers":
        return cls(config.rob_size + config.fetch_buffer + 8)

    def fits(self, config) -> bool:
        return self.pool >= config.rob_size + config.fetch_buffer + 8


class SoaKernel:
    """One run of one processor through the fused SoA cycle loop.

    Construction binds the processor's components (memory, predictor,
    scheme, store sets...) and array views; :meth:`run` executes the
    cycle loop and folds every counter back into the processor so
    ``Processor._build_result`` sees exactly the state the object path
    would have produced.
    """

    def __init__(self, processor, buffers: Optional[KernelBuffers] = None) -> None:
        p = processor
        self.p = p
        config = p.config
        if buffers is None or not buffers.fits(config):
            buffers = KernelBuffers.for_config(config)
        self.b = b = buffers
        self.t = trace_soa(p.trace)

        # Slot pool -----------------------------------------------------
        self.pbits = b.pbits
        self.pmask = b.pmask
        self.free: List[int] = list(range(b.pool - 1, -1, -1))
        # Array views (aliases so adapters read k.seq etc.).
        self.seq = b.seq
        self.tidx = b.tidx
        self.state = b.state
        self.fcyc = b.fcyc
        self.icyc = b.icyc
        self.rcyc = b.rcyc
        self.addr = b.addr
        self.size = b.size
        self.isld = b.isld
        self.isst = b.isst
        self.isbr = b.isbr
        self.fp = b.fp
        self.pops = b.pops
        self.pdata = b.pdata
        self.tvs = b.tvs
        self.tvpc = b.tvpc
        self.fwdseq = b.fwdseq
        self.safe = b.safe
        self.gbp = b.gbp
        self.unsafe = b.unsafe
        self.wend = b.wend
        self.snap = b.snap
        self.cons = b.cons

        # Age-ordered queues as slot deques (O(1) head pops at retire;
        # squash cuts pop the tail, so no mid-queue surgery ever happens).
        self.rob: deque = deque()
        self.lq: deque = deque()
        self.sq: deque = deque()
        self.sq_by_seq: Dict[int, int] = {}
        # Occupancy filters for the two O(queue) association walks.  Byte
        # overlap implies 8-byte-granule overlap, so a granule miss proves
        # no match exists and the walk is skipped; a hit falls back to the
        # exact walk.  ``sq_unresolved`` counts SQ stores with unknown
        # addresses (rcyc < 0), which the granule map cannot represent.
        self.sq_granules: Dict[int, int] = {}
        self.lq_granules: Dict[int, int] = {}
        self.sq_unresolved = 0
        # Flat rename table (arch reg -> producer enc, -1 when unmapped):
        # register ids are small dense ints, so a list beats a dict on the
        # dispatch/retire hot paths.
        self.rename: List[int] = [-1] * max(64, self.t.maxreg + 1)
        self._rename_clear: List[int] = [-1] * len(self.rename)

        # Event schedules as cycle-indexed rings of enc-int lists.  The
        # furthest anything is ever scheduled is one full memory miss (or
        # the slowest FU / the reject retry delay), so a power-of-two ring
        # spanning that horizon replaces the dict + key-heap pair: schedule
        # is one append, consume is one indexed read per cycle.
        memory = p.memory
        horizon = 4 + max(
            getattr(memory, "_d_mem", 1 << 12),
            max(FunctionalUnits.latency_by_cls),
            config.reject_retry_delay,
        )
        ring_size = 1 << horizon.bit_length()
        self.ring_mask = ring_size - 1
        self.completion_ring: List[List[int]] = [[] for _ in range(ring_size)]
        self.retry_ring: List[List[int]] = [[] for _ in range(ring_size)]
        self.ready: List[int] = []  # heap of enc (seq-ordered)

        # Scalar pipeline state (instance attrs so the cold squash path
        # can mutate them; the hot loop reads them a few times per cycle).
        self.cycle = 0
        self.next_seq = 0
        self.fetch_idx = 0
        self.fetch_buf: deque = deque()  # slots in fetch order (small)
        self.resume_cycle = 0
        self.blocked_branch = -1  # enc, or -1
        self.last_line = -1
        self.committed = 0
        self.iq_int = 0
        self.iq_fp = 0
        self.replay_streak: Dict[int, int] = {}
        self.force_nonspec: Set[int] = set()
        self.checking_cycles = 0
        self.ff_cycles = 0

        # Cold-path counters folded into HotCounters at the end.
        self.n_squash = 0
        self.n_guard_trips = 0
        self.n_gt_violations = 0

        # Component bindings --------------------------------------------
        self.memory = p.memory
        self.predictor = p.predictor
        self.scheme = p.scheme
        self.storesets = p.storesets
        self.wrongpath = p.wrongpath
        self.regs_int = p.regs_int
        self.regs_fp = p.regs_fp
        self.fu_caps = p.fus._caps_list
        self.fu_avail = p.fus._avail_list
        #: Slot-index adapter for the scheme, or None when the scheme (or
        #: this configuration of it) has no SoA transcription — the caller
        #: must then step the object path instead of calling :meth:`run`.
        self.hooks = p.scheme.soa_hooks(self)

        # Config scalars ------------------------------------------------
        self.width = config.width
        self.decode_latency = config.decode_latency
        self.fetch_cap = config.fetch_buffer
        self.iq_int_cap = config.iq_int
        self.iq_fp_cap = config.iq_fp
        self.rob_cap = config.rob_size
        self.lq_cap = config.lq_size
        self.sq_cap = config.sq_size
        self.ports = config.dcache_ports
        self.reject_delay = config.reject_retry_delay
        self.fwd_latency = 1 + config.l1d_latency
        self.l1i_latency = config.l1i_latency
        self.branch_penalty = config.branch_penalty
        self.replay_penalty = config.replay_penalty
        self.replay_guard = config.replay_guard
        self.sq_filter = config.scheme.sq_filter
        self.fastpath = p.fastpath_enabled
        self.reexec_loads = p.scheme.reexecutes_loads

    # ------------------------------------------------------------------
    # The fused cycle loop
    # ------------------------------------------------------------------
    def run(self, target: int, max_cycles: int) -> None:
        """Simulate until ``target`` instructions commit.

        One Python frame replaces the object path's per-cycle call tree
        (`step` -> stages -> leaf helpers); every stage below is a
        transcription of its ``Processor`` counterpart over slot arrays,
        in the same order with the same gates, so counters, RNG use and
        cycle numbering are bit-identical.
        """
        # --- local bindings (hot state) --------------------------------
        p = self.p
        t = self.t
        pbits = self.pbits
        pmask = self.pmask
        seq_ = self.seq
        tidx_ = self.tidx
        state_ = self.state
        fcyc_ = self.fcyc
        icyc_ = self.icyc
        rcyc_ = self.rcyc
        addr_ = self.addr
        size_ = self.size
        isld_ = self.isld
        isst_ = self.isst
        isbr_ = self.isbr
        fp_ = self.fp
        pops_ = self.pops
        pdata_ = self.pdata
        tvs_ = self.tvs
        tvpc_ = self.tvpc
        fwdseq_ = self.fwdseq
        safe_ = self.safe
        gbp_ = self.gbp
        unsafe_ = self.unsafe
        snap_ = self.snap
        cons_ = self.cons
        free_slots = self.free
        rob = self.rob
        lq = self.lq
        sq = self.sq
        sq_by_seq = self.sq_by_seq
        sqg = self.sq_granules
        lqg = self.lq_granules
        rename = self.rename
        ready = self.ready
        cring = self.completion_ring
        rring = self.retry_ring
        rmask = self.ring_mask
        ring_span = rmask + 1
        fetch_buf = self.fetch_buf
        replay_streak = self.replay_streak
        force_nonspec = self.force_nonspec

        tpc = t.pc
        tline = t.line
        tpool = t.fu_pool
        tlat = t.fu_lat
        tsrcs = t.srcs
        tnsrcs = t.nsrcs
        tdst = t.dst
        tdsrc = t.data_src
        taddr = t.addr
        tsize = t.size
        tisld = t.isld
        tisst = t.isst
        tisbr = t.isbr
        tfp = t.fp
        ttaken = t.taken
        ttarget = t.target
        trace_len = min(t.n, len(p.trace))

        heappush = heapq.heappush
        heappop = heapq.heappop

        scheme = self.scheme
        hooks = self.hooks
        storesets = self.storesets
        memory = self.memory
        mem_read = memory.read
        mem_write = memory.write
        mem_fetch = memory.fetch
        predictor = self.predictor
        pred_predict = predictor.predict
        pred_resolve = predictor.resolve
        btb_lookup = predictor.btb.lookup
        btb_install = predictor.btb.install
        regs_int = self.regs_int
        regs_fp = self.regs_fp
        fu_caps = self.fu_caps
        fu_avail = self.fu_avail
        wp_addrs = self.wrongpath._recent_addrs

        width = self.width
        decode_latency = self.decode_latency
        fetch_cap = self.fetch_cap
        iq_int_cap = self.iq_int_cap
        iq_fp_cap = self.iq_fp_cap
        rob_cap = self.rob_cap
        lq_cap = self.lq_cap
        sq_cap = self.sq_cap
        ports = self.ports
        reject_delay = self.reject_delay
        fwd_latency = self.fwd_latency
        l1i_latency = self.l1i_latency
        sq_filter = self.sq_filter
        fastpath = self.fastpath
        reexec_loads = self.reexec_loads
        has_load_hook = hooks.has_load_issue
        has_store_hook = hooks.has_store_resolve
        commit_mode = hooks.commit_mode  # 0 none, 1 per-load, 2 windowed
        hook_load = hooks.on_load_issue
        hook_store = hooks.on_store_resolve
        hook_commit_load = hooks.on_commit_load
        hook_commit = hooks.on_commit

        cycle = 0
        committed = 0
        ff_cycles = 0
        checking_cycles = 0

        # --- hot counters as locals (folded into HotCounters below) ----
        n_replays = n_replays_commit = n_replays_exec = 0
        n_commit = n_commit_loads = n_commit_safe = n_commit_stores = 0
        n_commit_branches = n_reexec = 0
        n_regw = n_regr = n_wakeups = 0
        n_mispredicts = n_misfetches = 0
        n_issue = n_issue_loads = n_issue_stores = n_fu = 0
        n_sq_search = n_sq_filtered = 0
        n_rejections = n_safe_at_issue = n_forwarded = n_dreads = 0
        n_ss_delays = 0
        n_stall_rob = n_stall_iq = n_stall_lq = n_stall_sq = n_stall_regs = 0
        n_lq_writes = n_sq_writes = n_rename = n_rob_writes = 0
        n_fetch_stall = n_fetch = n_icache_miss = n_icache_reads = 0
        n_bpred = 0

        limit_plus_one = max_cycles + 1

        while committed < target:
            # ===== event-horizon fast forward (Processor._maybe_fast_forward)
            if fastpath and not ready:
                head_can_commit = rob and state_[rob[0]] == _ST_COMPLETED
                if not head_can_commit:
                    ff_target = limit_plus_one
                    stall_code = _STALL_NONE
                    can_act = False
                    if fetch_buf:
                        first = fetch_buf[0]
                        decode_ready = fcyc_[first] + decode_latency
                        if cycle < decode_ready:
                            if decode_ready < ff_target:
                                ff_target = decode_ready
                        else:
                            # Read-only dispatch probe (stall cause or "can act").
                            ti = tidx_[first]
                            if len(rob) >= rob_cap:
                                stall_code = _STALL_ROB
                            elif (iq_fp_cap <= self.iq_fp) if tfp[ti] else (iq_int_cap <= self.iq_int):
                                stall_code = _STALL_IQ
                            elif tisld[ti] and len(lq) >= lq_cap:
                                stall_code = _STALL_LQ
                            elif tisst[ti] and len(sq) >= sq_cap:
                                stall_code = _STALL_SQ
                            elif tdst[ti] >= 0 and (
                                (regs_fp if tdst[ti] >= 32 else regs_int).free <= 0
                            ):
                                stall_code = _STALL_REGS
                            else:
                                can_act = True
                    if not can_act:
                        blocked = self.blocked_branch != -1
                        resume = self.resume_cycle
                        if (not blocked and len(fetch_buf) < fetch_cap
                                and self.fetch_idx < trace_len):
                            if cycle >= resume:
                                can_act = True
                            elif resume < ff_target:
                                ff_target = resume
                        if not can_act:
                            # Earliest scheduled completion/retry: scan the
                            # rings forward.  Nothing is ever scheduled past
                            # the ring horizon, and the scan stops at the
                            # first event, so the cost is O(cycles skipped).
                            # The scan starts AT the current cycle: events
                            # already due this cycle pin skipped to 0, they
                            # are drained by the stages below, never jumped.
                            scan = cycle
                            scan_end = cycle + ring_span
                            if ff_target < scan_end:
                                scan_end = ff_target
                            while scan < scan_end:
                                if cring[scan & rmask] or rring[scan & rmask]:
                                    ff_target = scan
                                    break
                                scan += 1
                            skipped = ff_target - cycle
                            if skipped >= 1:
                                if scheme.checking_active:
                                    checking_cycles += skipped
                                if blocked:
                                    n_fetch_stall += skipped
                                elif resume > cycle:
                                    n_fetch_stall += (
                                        resume if resume < ff_target else ff_target
                                    ) - cycle
                                if stall_code == _STALL_ROB:
                                    n_stall_rob += skipped
                                elif stall_code == _STALL_IQ:
                                    n_stall_iq += skipped
                                elif stall_code == _STALL_LQ:
                                    n_stall_lq += skipped
                                elif stall_code == _STALL_SQ:
                                    n_stall_sq += skipped
                                elif stall_code == _STALL_REGS:
                                    n_stall_regs += skipped
                                ff_cycles += skipped
                                cycle = ff_target

            squashed_this_cycle = False
            if scheme.checking_active:
                checking_cycles += 1

            # ===== commit (Processor._stage_commit + _retire) ============
            if rob and state_[rob[0]] == _ST_COMPLETED:
                slots_left = width
                while slots_left:
                    slots_left -= 1
                    if committed >= target:
                        break
                    if not rob:
                        break
                    head = rob[0]
                    if state_[head] != _ST_COMPLETED:
                        break
                    # Scheme commit decision, gated by mode so schemes with
                    # no commit behaviour pay nothing per instruction.
                    replay = False
                    if commit_mode == 2:
                        if scheme.checking_active or (isst_[head] and unsafe_[head]):
                            replay = hook_commit(head, cycle)
                    elif commit_mode == 1:
                        if isld_[head]:
                            replay = hook_commit_load(head)
                    if replay:
                        n_replays += 1
                        n_replays_commit += 1
                        self.cycle = cycle
                        self._squash_from(head)
                        squashed_this_cycle = True
                        break
                    if isld_[head] and tvs_[head] >= 0:
                        raise OrderingViolationMissed(
                            f"load seq={seq_[head]} addr={addr_[head]:#x} retired "
                            f"despite a premature issue past store "
                            f"seq={tvs_[head]} under scheme {scheme.name}"
                        )
                    # ---- retire ----
                    ti = tidx_[head]
                    state_[head] = _ST_COMMITTED
                    rob.popleft()
                    dst = tdst[ti]
                    if dst >= 0:
                        regs = regs_fp if dst >= 32 else regs_int
                        regs.free += 1
                        if rename[dst] == seq_[head] << pbits | head:
                            rename[dst] = -1
                    if isld_[head]:
                        if not lq or lq[0] != head:
                            raise AssertionError("LQ retired out of order")
                        lq.popleft()
                        a = addr_[head]
                        g = a >> 3
                        gend = (a + size_[head] - 1) >> 3
                        while g <= gend:
                            n = lqg[g] - 1
                            if n:
                                lqg[g] = n
                            else:
                                del lqg[g]
                            g += 1
                        n_commit_loads += 1
                        if reexec_loads:
                            mem_read(addr_[head])
                            n_reexec += 1
                        if safe_[head]:
                            n_commit_safe += 1
                    elif isst_[head]:
                        if not sq or sq[0] != head:
                            raise AssertionError("SQ retired out of order")
                        sq.popleft()
                        del sq_by_seq[seq_[head]]
                        a = addr_[head]
                        g = a >> 3
                        gend = (a + size_[head] - 1) >> 3
                        while g <= gend:
                            n = sqg[g] - 1
                            if n:
                                sqg[g] = n
                            else:
                                del sqg[g]
                            g += 1
                        mem_write(addr_[head])
                        n_commit_stores += 1
                    elif isbr_[head]:
                        n_commit_branches += 1
                    committed += 1
                    n_commit += 1
                    if replay_streak:
                        replay_streak.pop(ti, None)
                    if force_nonspec:
                        force_nonspec.discard(ti)
                    free_slots.append(head)

            # ===== writeback (Processor._stage_complete) =================
            events = cring[cycle & rmask]
            if events:
                for v in events:
                    slot = v & pmask
                    if seq_[slot] != v >> pbits:
                        continue  # squashed, slot since recycled
                    st = state_[slot]
                    if st == _ST_SQUASHED or st == _ST_COMPLETED:
                        continue
                    state_[slot] = _ST_COMPLETED
                    ti = tidx_[slot]
                    if tdst[ti] >= 0:
                        n_regw += 1
                    cons = cons_[slot]
                    if cons:
                        # ---- wake consumers ----
                        for c in cons:
                            cslot = (c >> 1) & pmask
                            if (seq_[cslot] != c >> (pbits + 1)
                                    or state_[cslot] == _ST_SQUASHED):
                                continue  # consumer squashed (slot maybe reused)
                            n_wakeups += 1
                            if not (c & 1):  # operand
                                pops_[cslot] -= 1
                                if pops_[cslot] == 0 and state_[cslot] == _ST_DISPATCHED:
                                    state_[cslot] = _ST_READY
                                    heappush(ready, seq_[cslot] << pbits | cslot)
                            else:  # store data
                                pdata_[cslot] -= 1
                                if (pdata_[cslot] == 0 and isst_[cslot]
                                        and rcyc_[cslot] >= 0
                                        and state_[cslot] == _ST_ISSUED):
                                    cring[(cycle + 1) & rmask].append(
                                        seq_[cslot] << pbits | cslot)
                        cons.clear()
                    if isbr_[slot]:
                        # ---- resolve branch (Processor._resolve_branch) ----
                        mispredicted = pred_resolve(tpc[ti], ttaken[ti], snap_[slot])
                        if ttaken[ti]:
                            btb_install(tpc[ti], ttarget[ti])
                        if self.blocked_branch == v:
                            self.blocked_branch = -1
                            self.resume_cycle = cycle + self.branch_penalty
                            if mispredicted:
                                n_mispredicts += 1
                                scheme.on_recovery(seq_[slot])
                            else:
                                n_misfetches += 1
                events.clear()

            # ===== issue (Processor._stage_issue) ========================
            rev = rring[cycle & rmask]
            if ready or rev:
                if rev:
                    for v in rev:
                        slot = v & pmask
                        if seq_[slot] == v >> pbits and state_[slot] == _ST_READY:
                            heappush(ready, v)
                    rev.clear()
                if ready:
                    fu_avail[:] = fu_caps  # FunctionalUnits.new_cycle
                    ports_left = ports
                    issued = 0
                    # One small list per non-idle issue cycle; parks
                    # bandwidth-deferred entries exactly like the object
                    # path's deferred list.
                    deferred: List[int] = []  # repro: noqa[REPRO005]
                    while ready and issued < width:
                        v = heappop(ready)
                        slot = v & pmask
                        if seq_[slot] != v >> pbits or state_[slot] != _ST_READY:
                            continue
                        ti = tidx_[slot]
                        if isld_[slot]:
                            # ---- _try_issue_load, inlined ----
                            la = addr_[slot]
                            lseq = seq_[slot]
                            nonspec = bool(force_nonspec) and ti in force_nonspec
                            if nonspec and self.sq_unresolved:
                                rring[(cycle + 1) & rmask].append(v)
                            elif storesets is not None and storesets.blocking_store(
                                    tpc[ti], lseq) is not None:
                                n_ss_delays += 1
                                rring[(cycle + 2) & rmask].append(v)
                            elif ports_left <= 0:
                                deferred.append(v)
                            elif fu_avail[0] <= 0:  # loads use the int-ALU pool
                                deferred.append(v)
                            else:
                                fu_avail[0] -= 1
                                l_end = la + size_[slot]
                                if sq_filter and (not sq or lseq < seq_[sq[0]]):
                                    n_sq_filtered += 1
                                    action = SOA_CACHE
                                    fwd_slot = -1
                                    all_resolved = True
                                else:
                                    n_sq_search += 1
                                    # Granule fast path: with every SQ
                                    # address known and none sharing a
                                    # granule with the load, the walk can
                                    # only answer (CACHE, -1, True).
                                    g = la >> 3
                                    gend = (l_end - 1) >> 3
                                    while g <= gend and g not in sqg:
                                        g += 1
                                    if g > gend and not self.sq_unresolved:
                                        action = SOA_CACHE
                                        fwd_slot = -1
                                        all_resolved = True
                                    else:
                                        action, fwd_slot, all_resolved = \
                                            sq_forward_search_soa(
                                                sq, seq_, addr_, size_,
                                                rcyc_, pdata_,
                                                lseq, la, l_end)
                                if action == SOA_REJECT:
                                    n_rejections += 1
                                    rring[(cycle + reject_delay) & rmask].append(v)
                                    issued += 1  # consumed bandwidth
                                else:
                                    state_[slot] = _ST_ISSUED
                                    icyc_[slot] = cycle
                                    g = la >> 3
                                    gend = (l_end - 1) >> 3
                                    while g <= gend:
                                        lqg[g] = lqg.get(g, 0) + 1
                                        g += 1
                                    # _free_iq_entry: un-issued => still in IQ
                                    if fp_[slot]:
                                        self.iq_fp -= 1
                                    else:
                                        self.iq_int -= 1
                                    n_issue_loads += 1
                                    n_regr += tnsrcs[ti]
                                    safe_[slot] = all_resolved
                                    gbp_[slot] = nonspec and all_resolved
                                    if all_resolved:
                                        n_safe_at_issue += 1
                                    # WrongPath.observe_address (bounded deque)
                                    wp_addrs.append(la)
                                    if action == SOA_FORWARD:
                                        fwdseq_[slot] = seq_[fwd_slot]
                                        n_forwarded += 1
                                        latency = fwd_latency
                                    else:
                                        fwdseq_[slot] = -1
                                        ports_left -= 1
                                        n_dreads += 1
                                        latency = 1 + mem_read(la)
                                    cring[(cycle + latency) & rmask].append(v)
                                    if has_load_hook:
                                        hook_load(slot)
                                    issued += 1
                            if squashed_this_cycle:
                                break
                        elif isst_[slot]:
                            if fu_avail[0] <= 0:  # stores use the int-ALU pool
                                deferred.append(v)
                                continue
                            fu_avail[0] -= 1
                            # ---- _issue_store, inlined ----
                            state_[slot] = _ST_ISSUED
                            icyc_[slot] = cycle
                            rcyc_[slot] = cycle
                            self.sq_unresolved -= 1
                            if fp_[slot]:  # _free_iq_entry
                                self.iq_fp -= 1
                            else:
                                self.iq_int -= 1
                            n_issue_stores += 1
                            n_regr += tnsrcs[ti]
                            sseq = seq_[slot]
                            if storesets is not None:
                                storesets.store_resolved(tpc[ti], sseq)
                            sa = addr_[slot]
                            s_end = sa + size_[slot]
                            g = sa >> 3
                            gend = (s_end - 1) >> 3
                            while g <= gend:
                                sqg[g] = sqg.get(g, 0) + 1
                                g += 1
                            # ---- ground-truth premature-load check ----
                            # Gated by the issued-load granule map: a miss
                            # proves no issued in-flight load overlaps, so
                            # the LQ walk would mark nothing.
                            g = sa >> 3
                            while g <= gend and g not in lqg:
                                g += 1
                            if g <= gend:
                                for lslot in lq:
                                    if seq_[lslot] > sseq and icyc_[lslot] >= 0:
                                        la2 = addr_[lslot]
                                        l_end2 = la2 + size_[lslot]
                                        if (sa < l_end2 and la2 < s_end
                                                and state_[lslot] != _ST_COMMITTED
                                                and tvs_[lslot] < 0):
                                            fs = fwdseq_[lslot]
                                            if fs > sseq:
                                                fwd = sq_by_seq.get(fs)
                                                if (fwd is not None
                                                        and addr_[fwd] <= la2
                                                        and l_end2 <= addr_[fwd] + size_[fwd]):
                                                    continue
                                            tvs_[lslot] = sseq
                                            tvpc_[lslot] = tpc[ti]
                                            self.n_gt_violations += 1
                            if pdata_[slot] == 0:
                                cring[(cycle + 1) & rmask].append(v)
                            if has_store_hook:
                                victim = hook_store(slot)
                                if victim >= 0 and state_[victim] != _ST_SQUASHED:
                                    n_replays += 1
                                    n_replays_exec += 1
                                    self.cycle = cycle
                                    self._squash_from(victim)
                                    squashed_this_cycle = True
                            issued += 1
                            if squashed_this_cycle:
                                break
                        else:
                            pool = tpool[ti]
                            if fu_avail[pool] <= 0:
                                deferred.append(v)
                                continue
                            fu_avail[pool] -= 1
                            # ---- _issue_alu, inlined ----
                            state_[slot] = _ST_ISSUED
                            icyc_[slot] = cycle
                            if fp_[slot]:  # _free_iq_entry
                                self.iq_fp -= 1
                            else:
                                self.iq_int -= 1
                            n_issue += 1
                            n_regr += tnsrcs[ti]
                            n_fu += 1
                            cring[(cycle + tlat[ti]) & rmask].append(v)
                            issued += 1
                    for v in deferred:
                        heappush(ready, v)

            # ===== dispatch (Processor._stage_dispatch) ==================
            if fetch_buf and cycle >= fcyc_[fetch_buf[0]] + decode_latency:
                dispatched = 0
                while fetch_buf and dispatched < width:
                    slot = fetch_buf[0]
                    if cycle < fcyc_[slot] + decode_latency:
                        break
                    ti = tidx_[slot]
                    if len(rob) >= rob_cap:
                        n_stall_rob += 1
                        break
                    if tfp[ti]:
                        if self.iq_fp >= iq_fp_cap:
                            n_stall_iq += 1
                            break
                    elif self.iq_int >= iq_int_cap:
                        n_stall_iq += 1
                        break
                    is_load = tisld[ti]
                    is_store = tisst[ti]
                    if is_load and len(lq) >= lq_cap:
                        n_stall_lq += 1
                        break
                    if is_store and len(sq) >= sq_cap:
                        n_stall_sq += 1
                        break
                    dst = tdst[ti]
                    if dst >= 0:
                        regs = regs_fp if dst >= 32 else regs_int
                        if regs.free <= 0:  # PhysRegFile.try_allocate
                            n_stall_regs += 1
                            break
                        regs.free -= 1
                        regs.allocations += 1
                    fetch_buf.popleft()
                    rob.append(slot)
                    sseq = seq_[slot]
                    enc = sseq << pbits | slot
                    if tfp[ti]:
                        self.iq_fp += 1
                    else:
                        self.iq_int += 1
                    if is_load:
                        lq.append(slot)
                        n_lq_writes += 1
                    elif is_store:
                        sq.append(slot)
                        sq_by_seq[sseq] = slot
                        self.sq_unresolved += 1
                        n_sq_writes += 1
                        if storesets is not None:
                            storesets.store_dispatched(tpc[ti], sseq)
                    # ---- dependence wiring ----
                    pending = 0
                    for reg in tsrcs[ti]:
                        pe = rename[reg]
                        if pe >= 0:
                            pslot = pe & pmask
                            if seq_[pslot] == pe >> pbits and state_[pslot] < _ST_COMPLETED:
                                cons_[pslot].append(enc << 1)
                                pending += 1
                    pops_[slot] = pending
                    dsrc = tdsrc[ti]
                    if dsrc >= 0:
                        pe = rename[dsrc]
                        if pe >= 0:
                            pslot = pe & pmask
                            if seq_[pslot] == pe >> pbits and state_[pslot] < _ST_COMPLETED:
                                cons_[pslot].append(enc << 1 | 1)
                                pdata_[slot] = 1
                    if dst >= 0:
                        rename[dst] = enc
                    if pending == 0:
                        state_[slot] = _ST_READY
                        heappush(ready, enc)
                    dispatched += 1
                if dispatched:
                    n_rename += dispatched
                    n_rob_writes += dispatched

            # ===== fetch (Processor._stage_fetch) ========================
            if self.blocked_branch != -1 or cycle < self.resume_cycle:
                n_fetch_stall += 1
            elif len(fetch_buf) < fetch_cap and self.fetch_idx < trace_len:
                fetch_idx = self.fetch_idx
                nseq = self.next_seq
                last_line = self.last_line
                fetched = 0
                while (fetched < width and len(fetch_buf) < fetch_cap
                        and fetch_idx < trace_len):
                    ti = fetch_idx
                    line = tline[ti]
                    if line != last_line:
                        n_icache_reads += 1
                        lat = mem_fetch(tpc[ti])
                        last_line = line
                        if lat > l1i_latency:
                            self.resume_cycle = cycle + lat
                            n_icache_miss += 1
                            break
                    # ---- allocate + initialise a slot (DynInstr.__init__)
                    slot = free_slots.pop()
                    seq_[slot] = nseq
                    tidx_[slot] = ti
                    state_[slot] = _ST_DISPATCHED
                    fcyc_[slot] = cycle
                    icyc_[slot] = -1
                    rcyc_[slot] = -1
                    addr_[slot] = taddr[ti]
                    size_[slot] = tsize[ti]
                    isld_[slot] = tisld[ti]
                    isst_[slot] = tisst[ti]
                    isbr_[slot] = tisbr[ti]
                    fp_[slot] = tfp[ti]
                    pdata_[slot] = 0
                    tvs_[slot] = -1
                    tvpc_[slot] = -1
                    unsafe_[slot] = False
                    c = cons_[slot]
                    if c:
                        c.clear()
                    fetch_buf.append(slot)
                    nseq += 1
                    fetch_idx += 1
                    fetched += 1
                    if tisbr[ti]:
                        predicted_taken, snapshot = pred_predict(tpc[ti])
                        snap_[slot] = snapshot
                        n_bpred += 1
                        if predicted_taken != ttaken[ti]:
                            # Mispredict: fetch stalls until resolution;
                            # wrong-path loads corrupt the filters now.
                            self.blocked_branch = seq_[slot] << pbits | slot
                            for age, wa in self.wrongpath.loads_for_mispredict(
                                    seq_[slot]):
                                scheme.on_wrongpath_load(age, wa)
                            break
                        if predicted_taken and btb_lookup(tpc[ti]) is None:
                            n_misfetches += 1
                            self.resume_cycle = cycle + 2
                            break
                        if ttaken[ti]:
                            break  # taken branch ends the fetch group
                self.fetch_idx = fetch_idx
                self.next_seq = nseq
                self.last_line = last_line
                if fetched:
                    n_fetch += fetched

            cycle += 1
            if cycle > max_cycles:
                self.cycle = cycle
                self.committed = committed
                self._sync(cycle, committed, checking_cycles, ff_cycles)
                raise SimulationError(
                    f"no forward progress: {committed}/{target} committed "
                    f"after {cycle} cycles on {p.trace.name}"
                )

        # ===== fold state and counters back into the processor ==========
        self._sync(cycle, committed, checking_cycles, ff_cycles)
        hot = p.hot
        hot.replays += n_replays
        hot.replays_commit_time += n_replays_commit
        hot.replays_execution_time += n_replays_exec
        hot.commit_instructions += n_commit
        hot.commit_loads += n_commit_loads
        hot.commit_safe_loads += n_commit_safe
        hot.commit_stores += n_commit_stores
        hot.commit_branches += n_commit_branches
        hot.dcache_reexecutions += n_reexec
        hot.regfile_writes += n_regw
        hot.regfile_reads += n_regr
        hot.iq_wakeups += n_wakeups
        hot.branch_mispredicts += n_mispredicts
        hot.branch_misfetches += n_misfetches
        hot.issue_instructions += n_issue
        hot.issue_loads += n_issue_loads
        hot.issue_stores += n_issue_stores
        hot.fu_ops += n_fu
        hot.sq_searches += n_sq_search
        hot.load_rejections += n_rejections
        hot.load_safe_at_issue += n_safe_at_issue
        hot.load_forwarded += n_forwarded
        hot.dcache_reads += n_dreads
        hot.groundtruth_violations += self.n_gt_violations
        hot.storesets_load_delays += n_ss_delays
        hot.stall_rob_full += n_stall_rob
        hot.stall_iq_full += n_stall_iq
        hot.stall_lq_full += n_stall_lq
        hot.stall_sq_full += n_stall_sq
        hot.stall_regs_full += n_stall_regs
        hot.lq_writes += n_lq_writes
        hot.sq_writes += n_sq_writes
        hot.rename_ops += n_rename
        hot.rob_writes += n_rob_writes
        hot.fetch_stall_cycles += n_fetch_stall
        hot.fetch_instructions += n_fetch
        hot.fetch_icache_miss += n_icache_miss
        hot.icache_reads += n_icache_reads
        hot.bpred_lookups += n_bpred
        hot.squash_instructions += self.n_squash
        hot.replay_guard_trips += self.n_guard_trips
        p.sq.searches += n_sq_search
        p.sq.searches_filtered += n_sq_filtered
        hooks.fold()

    def _sync(self, cycle: int, committed: int, checking_cycles: int,
              ff_cycles: int) -> None:
        """Write the kernel's scalar cursors back onto the processor."""
        p = self.p
        p.cycle = cycle
        p.committed = committed
        p.next_seq = self.next_seq
        p.fetch_idx = self.fetch_idx
        p.fetch_resume_cycle = self.resume_cycle
        p._last_fetch_line = self.last_line
        p._checking_cycles += checking_cycles
        p.fast_forwarded_cycles += ff_cycles
        self.cycle = cycle
        self.committed = committed

    # ------------------------------------------------------------------
    # Squash / replay (cold path)
    # ------------------------------------------------------------------
    def _squash_from(self, slot: int) -> None:
        """Transcription of ``Processor._squash_from`` over slot arrays."""
        seq_ = self.seq
        state_ = self.state
        tidx_ = self.tidx
        tdst = self.t.dst
        boundary = seq_[slot]
        cycle = self.cycle
        if self.storesets is not None:
            if self.isld[slot] and self.tvpc[slot] >= 0:
                self.storesets.record_violation(
                    self.t.pc[tidx_[slot]], self.tvpc[slot])
            self.storesets.squash(boundary - 1)
        self.fetch_idx = tidx_[slot]
        self.last_line = -1
        free_slots = self.free
        for b in self.fetch_buf:
            state_[b] = _ST_SQUASHED
            free_slots.append(b)
        self.fetch_buf.clear()
        # Cut each age-ordered queue by popping its tail back to the first
        # survivor (the deques are seq-ascending by construction, and a
        # squash only ever removes a suffix).
        rob = self.rob
        # One small list per squash (a mispredict-rate event, not
        # per-cycle); collecting then reversing preserves the object
        # path's oldest-first victim order.
        victims = []  # repro: noqa[REPRO005]
        while rob and seq_[rob[-1]] >= boundary:
            victims.append(rob.pop())
        victims.reverse()  # process oldest-first, like the object path
        hooks = self.hooks
        collect_loads = hooks.wants_squashed_loads
        squashed_load_addrs: List[int] = []  # repro: noqa[REPRO005]
        regs_int = self.regs_int
        regs_fp = self.regs_fp
        isld_ = self.isld
        icyc_ = self.icyc
        fp_ = self.fp
        for victim in victims:  # oldest-first, like the object path
            state_[victim] = _ST_SQUASHED
            self._free_iq_if_held(victim)
            dst = tdst[tidx_[victim]]
            if dst >= 0:
                (regs_fp if dst >= 32 else regs_int).release()
            if collect_loads and isld_[victim] and icyc_[victim] >= 0:
                squashed_load_addrs.append(self.addr[victim])
            self.n_squash += 1
            free_slots.append(victim)
        addr_ = self.addr
        size_ = self.size
        lqg = self.lq_granules
        lq = self.lq
        while lq and seq_[lq[-1]] >= boundary:
            vslot = lq.pop()
            if icyc_[vslot] >= 0:
                a = addr_[vslot]
                g = a >> 3
                gend = (a + size_[vslot] - 1) >> 3
                while g <= gend:
                    n = lqg[g] - 1
                    if n:
                        lqg[g] = n
                    else:
                        del lqg[g]
                    g += 1
        rcyc_ = self.rcyc
        sqg = self.sq_granules
        sq = self.sq
        sq_by_seq = self.sq_by_seq
        while sq and seq_[sq[-1]] >= boundary:
            vslot = sq.pop()
            del sq_by_seq[seq_[vslot]]
            if rcyc_[vslot] >= 0:
                a = addr_[vslot]
                g = a >> 3
                gend = (a + size_[vslot] - 1) >> 3
                while g <= gend:
                    n = sqg[g] - 1
                    if n:
                        sqg[g] = n
                    else:
                        del sqg[g]
                    g += 1
            else:
                self.sq_unresolved -= 1
        rename = self.rename
        rename[:] = self._rename_clear
        pbits = self.pbits
        for survivor in rob:
            dst = tdst[tidx_[survivor]]
            if dst >= 0:
                rename[dst] = seq_[survivor] << pbits | survivor
        hooks.on_squash(boundary - 1, squashed_load_addrs)
        blocked = self.blocked_branch
        if blocked != -1:
            bslot = blocked & self.pmask
            if seq_[bslot] != blocked >> pbits or state_[bslot] == _ST_SQUASHED:
                self.blocked_branch = -1
        self.resume_cycle = cycle + self.replay_penalty
        ti = tidx_[slot]
        streak = self.replay_streak.get(ti, 0) + 1
        self.replay_streak[ti] = streak
        if streak >= self.replay_guard:
            self.force_nonspec.add(ti)
            self.n_guard_trips += 1

    def _free_iq_if_held(self, slot: int) -> None:
        """``Processor._free_iq_entry``: issue released the entry already,
        so only un-issued victims still hold one."""
        if self.icyc[slot] < 0:
            if self.fp[slot]:
                self.iq_fp -= 1
            else:
                self.iq_int -= 1
