"""Top-level simulator: machine configuration, pipeline, run harness."""

from repro.sim.config import (
    MachineConfig,
    SchemeConfig,
    CONFIG1,
    CONFIG2,
    CONFIG3,
    CONFIGS,
    small_config,
)
from repro.sim.processor import Processor
from repro.sim.result import SimulationResult
from repro.sim.runner import run_trace, run_workload

__all__ = [
    "MachineConfig",
    "SchemeConfig",
    "CONFIG1",
    "CONFIG2",
    "CONFIG3",
    "CONFIGS",
    "small_config",
    "Processor",
    "SimulationResult",
    "run_trace",
    "run_workload",
]
