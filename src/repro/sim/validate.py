"""Structural invariant checking for the pipeline.

:func:`check_invariants` inspects a live :class:`~repro.sim.processor.
Processor` and raises :class:`~repro.errors.SimulationError` on any
violated structural property.  The checks are independent of the timing
model — they express what a correct out-of-order machine can never do —
and are used by the test suite (and available for debugging via
``run_with_validation``).
"""

from typing import List

from repro.backend.dyninst import InstrState
from repro.errors import SimulationError
from repro.sim.processor import Processor


def check_invariants(proc: Processor) -> None:
    """Raise on the first violated structural invariant."""
    _check_age_order(proc)
    _check_queue_membership(proc)
    _check_iq_accounting(proc)
    _check_register_accounting(proc)
    _check_rename_consistency(proc)
    _check_commit_boundary(proc)


def _ages(entries) -> List[int]:
    return [e.seq for e in entries]


def _check_age_order(proc: Processor) -> None:
    """ROB, LQ and SQ are age-ordered queues."""
    for name, ring in (("ROB", proc.rob), ("LQ", proc.lq.ring), ("SQ", proc.sq.ring)):
        ages = _ages(ring)
        if ages != sorted(ages):
            raise SimulationError(f"{name} not age-ordered: {ages}")


def _check_queue_membership(proc: Processor) -> None:
    """Every LQ/SQ entry is an un-squashed memory op present in the ROB."""
    rob_seqs = set(_ages(proc.rob))
    for load in proc.lq.ring:
        if not load.is_load or load.squashed or load.seq not in rob_seqs:
            raise SimulationError(f"stale LQ entry {load}")
    for store in proc.sq.ring:
        if not store.is_store or store.squashed or store.seq not in rob_seqs:
            raise SimulationError(f"stale SQ entry {store}")


def _check_iq_accounting(proc: Processor) -> None:
    """Issue-queue occupancy counters match the instructions that hold slots."""
    int_held = sum(1 for e in proc.rob if e.in_iq and not e.fp_side)
    fp_held = sum(1 for e in proc.rob if e.in_iq and e.fp_side)
    if int_held != proc.iq_int_count or fp_held != proc.iq_fp_count:
        raise SimulationError(
            f"IQ accounting drift: counted {proc.iq_int_count}/{proc.iq_fp_count}, "
            f"held {int_held}/{fp_held}"
        )
    if proc.iq_int_count > proc.config.iq_int or proc.iq_fp_count > proc.config.iq_fp:
        raise SimulationError("IQ over capacity")


def _check_register_accounting(proc: Processor) -> None:
    """Physical registers in flight equal those missing from the free lists."""
    int_used = sum(
        1 for e in proc.rob if e.uop.dst is not None and e.uop.dst < 32
    )
    fp_used = sum(
        1 for e in proc.rob if e.uop.dst is not None and e.uop.dst >= 32
    )
    int_free_expected = proc.regs_int.total - 32 - int_used
    fp_free_expected = proc.regs_fp.total - 32 - fp_used
    if proc.regs_int.free != int_free_expected or proc.regs_fp.free != fp_free_expected:
        raise SimulationError(
            f"register leak: free {proc.regs_int.free}/{proc.regs_fp.free}, "
            f"expected {int_free_expected}/{fp_free_expected}"
        )


def _check_rename_consistency(proc: Processor) -> None:
    """The rename table points at the youngest in-flight writer of each reg."""
    youngest = {}
    for entry in proc.rob:
        if entry.uop.dst is not None:
            youngest[entry.uop.dst] = entry
    for reg, producer in proc.rename.items():
        if producer.squashed:
            raise SimulationError(f"rename[{reg}] points at squashed {producer}")
        if youngest.get(reg) is not producer:
            raise SimulationError(
                f"rename[{reg}] is {producer}, youngest writer is {youngest.get(reg)}"
            )


def _check_commit_boundary(proc: Processor) -> None:
    """Nothing in the ROB has committed; everything committed left the ROB."""
    for entry in proc.rob:
        if entry.state == InstrState.COMMITTED:
            raise SimulationError(f"committed instruction still in ROB: {entry}")
        if entry.state == InstrState.SQUASHED:
            raise SimulationError(f"squashed instruction still in ROB: {entry}")


def run_with_validation(proc: Processor, max_instructions: int,
                        every_cycles: int = 1):
    """Drive ``proc`` manually, checking invariants every N cycles."""
    target = min(max_instructions, len(proc.trace))
    proc._commit_target = target
    guard = max(200_000, max_instructions * 60)
    while proc.committed < target:
        proc.step()
        if proc.cycle % every_cycles == 0:
            check_invariants(proc)
        if proc.cycle > guard:
            raise SimulationError("no forward progress under validation")
    proc.scheme.finalize(proc.cycle)
    return proc._build_result()
