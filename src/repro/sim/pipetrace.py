"""Per-instruction pipeline event tracing and timeline rendering.

Attach a :class:`PipelineTracer` to a :class:`~repro.sim.processor.Processor`
before running and every pipeline event (fetch, dispatch, issue, complete,
commit, squash, replay) is recorded.  ``render_timeline`` prints a
Konata-style text chart — one row per dynamic instruction, one column per
cycle — which makes dependence stalls, rejections, and replay squashes
visible at a glance.  Intended for debugging and for the examples; tracing
adds overhead, so production runs leave ``Processor.tracer`` unset.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Event mnemonics in pipeline order (later events overwrite earlier ones
#: when they land on the same cycle in the rendered chart).
EVENT_CHARS = {
    "fetch": "F",
    "dispatch": "D",
    "issue": "I",
    "reject": "j",
    "complete": "C",
    "commit": "R",      # retire
    "squash": "x",
    "replay": "!",
}


@dataclass
class TracedInstr:
    """Event record of one dynamic instruction instance."""

    seq: int
    trace_idx: int
    mnemonic: str
    events: List[Tuple[int, str]] = field(default_factory=list)
    squashed: bool = False

    def cycle_of(self, kind: str) -> Optional[int]:
        for cycle, k in self.events:
            if k == kind:
                return cycle
        return None


class PipelineTracer:
    """Bounded recorder of pipeline events.

    ``capacity`` bounds memory: only the most recent ``capacity`` dynamic
    instructions are retained (older rows are dropped from the front).
    """

    def __init__(self, capacity: int = 512):
        self.capacity = capacity
        self._instrs: Dict[int, TracedInstr] = {}
        self._order: List[int] = []
        self.events_recorded = 0
        #: Highest sequence number ever evicted from the ring.  New rows
        #: are created in increasing-seq order (the first event of every
        #: dynamic instruction is its fetch), so any absent seq at or
        #: below this mark was evicted — late events for it (a squash or
        #: completion arriving after eviction) must be dropped rather
        #: than resurrecting a partial row out of order.
        self._evicted_through = -1

    # -- recording --------------------------------------------------------
    def record(self, kind: str, instr, cycle: int) -> None:
        """Record one event for a dynamic instruction.

        Events for instructions already evicted from the ring (and every
        event when ``capacity <= 0``) are counted but not retained, so
        :meth:`instr`/:meth:`latency` answer ``None`` for evicted rows
        instead of returning stale partial ones.
        """
        self.events_recorded += 1
        seq = instr.seq
        entry = self._instrs.get(seq)
        if entry is None:
            if self.capacity <= 0 or seq <= self._evicted_through:
                return
            entry = TracedInstr(seq, instr.trace_idx, instr.uop.cls.name)
            self._instrs[seq] = entry
            self._order.append(seq)
            if len(self._order) > self.capacity:
                dropped = self._order.pop(0)
                self._instrs.pop(dropped, None)
                if dropped > self._evicted_through:
                    self._evicted_through = dropped
        entry.events.append((cycle, kind))
        if kind == "squash":
            entry.squashed = True

    # -- queries ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def instructions(self) -> List[TracedInstr]:
        """Traced instructions, oldest first."""
        return [self._instrs[seq] for seq in self._order]

    def instr(self, seq: int) -> Optional[TracedInstr]:
        return self._instrs.get(seq)

    def latency(self, seq: int, start: str = "fetch", end: str = "commit") -> Optional[int]:
        """Cycles between two events of one instruction, if both happened."""
        entry = self._instrs.get(seq)
        if entry is None:
            return None
        a, b = entry.cycle_of(start), entry.cycle_of(end)
        if a is None or b is None:
            return None
        return b - a

    # -- rendering --------------------------------------------------------
    def render_timeline(self, first_seq: Optional[int] = None,
                        max_rows: int = 40, max_width: int = 100) -> str:
        """ASCII pipeline chart: rows are instructions, columns cycles."""
        rows = [e for e in self.instructions()
                if first_seq is None or e.seq >= first_seq][:max_rows]
        # An evicted window (first_seq below everything retained, or the
        # whole requested range dropped) renders as empty, never raises.
        cells = [c for e in rows for c, _ in e.events]
        if not cells:
            return "(no traced instructions)"
        start = min(cells)
        end = max(cells)
        width = min(end - start + 1, max_width)
        lines = [f"cycles {start}..{start + width - 1}"]
        for entry in rows:
            lane = [" "] * width
            for cycle, kind in entry.events:
                col = cycle - start
                if 0 <= col < width:
                    lane[col] = EVENT_CHARS.get(kind, "?")
            flag = "x" if entry.squashed else " "
            lines.append(
                f"{entry.seq:6d} {entry.mnemonic:7s}{flag}|{''.join(lane)}|"
            )
        legend = " ".join(f"{c}={k}" for k, c in EVENT_CHARS.items())
        lines.append(f"legend: {legend}")
        return "\n".join(lines)
