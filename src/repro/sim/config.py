"""Machine and scheme configurations (paper Table 1)."""

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.mem.cache import CacheConfig

#: ``storesets`` is a label alias: the store-set predictor rides on the
#: conventional LQ, so its canonical config is conventional + store_sets.
_STORESETS_ALIAS = "storesets"

#: Boolean label suffixes, in canonical emission order: token -> (field,
#: labelled value).  A token appears in a label iff the field differs
#: from the dataclass default.
_FLAG_TOKENS: Tuple[Tuple[str, str, bool], ...] = (
    ("local", "local", True),
    ("coherent", "coherence", True),
    ("storesets", "store_sets", True),
    ("nosafe", "safe_loads", False),
    ("sqfilter", "sq_filter", True),
)

#: Integer-valued label suffixes (``<token><N>``), canonical order.
_INT_TOKENS: Tuple[Tuple[str, str], ...] = (
    ("queue", "checking_queue_entries"),
    ("table", "table_entries"),
    ("regs", "yla_registers"),
    ("gran", "yla_granularity"),
    ("entries", "bloom_entries"),
)


@dataclass(frozen=True)
class SchemeConfig:
    """Which dependence-checking scheme runs and with what parameters."""

    kind: str = "conventional"  # conventional | yla | bloom | dmdc | garg | value
    yla_registers: int = 8
    yla_granularity: int = 8          # bytes; 8 = quad-word interleaving
    bloom_entries: int = 1024
    table_entries: Optional[int] = None  # None -> machine config's size
    local: bool = False                  # local vs global DMDC
    safe_loads: bool = True              # safe-load detection optimisation
    checking_queue_entries: Optional[int] = None  # not None -> queue variant
    coherence: bool = False
    sq_filter: bool = False              # Section 3 SQ-search filtering
    #: Optional store-set dependence predictor (Chrysos-Emer; the paper's
    #: related work [7]).  Off by default, as in the paper.
    store_sets: bool = False

    def __post_init__(self):
        if self.kind not in ("conventional", "yla", "bloom", "dmdc", "garg", "value"):
            raise ConfigError(f"unknown scheme kind {self.kind!r}")

    def cache_key(self) -> str:
        """Deterministic canonical form: same fields, same key, any process."""
        return json.dumps(asdict(self), sort_keys=True, separators=(",", ":"))

    # -- the canonical label codec ----------------------------------------
    #
    # One grammar shared by the CLI, the correctness matrix, the bench
    # harness, and the HTTP service: ``<kind>[-<suffix>...]`` where each
    # suffix names one non-default field (``local``, ``coherent``,
    # ``storesets``, ``nosafe``, ``sqfilter``, ``queue<N>``, ``table<N>``,
    # ``regs<N>``, ``gran<N>``, ``entries<N>``).  ``storesets`` alone
    # abbreviates ``conventional-storesets``.  ``label()`` and
    # ``from_label()`` round-trip exactly: every field is covered.

    def label(self) -> str:
        """The canonical label for this scheme configuration."""
        defaults = SchemeConfig()
        parts = [self.kind]
        skip_storesets = False
        if self.kind == "conventional" and self.store_sets:
            parts = [_STORESETS_ALIAS]
            skip_storesets = True
        for token, field_name, labelled in _FLAG_TOKENS:
            if token == "storesets" and skip_storesets:
                continue
            if getattr(self, field_name) == labelled \
                    and getattr(defaults, field_name) != labelled:
                parts.append(token)
        for token, field_name in _INT_TOKENS:
            value = getattr(self, field_name)
            if value != getattr(defaults, field_name):
                parts.append(f"{token}{value}")
        return "-".join(parts)

    @classmethod
    def from_label(cls, label: str) -> "SchemeConfig":
        """Parse a canonical scheme label back into a configuration.

        Inverse of :meth:`label`; unknown kinds or suffixes raise
        :class:`~repro.errors.ConfigError` naming the offending token.
        """
        tokens = label.strip().split("-")
        head, rest = tokens[0], tokens[1:]
        fields: Dict[str, object] = {}
        if head == _STORESETS_ALIAS:
            fields["kind"] = "conventional"
            fields["store_sets"] = True
        elif head in ("conventional", "yla", "bloom", "dmdc", "garg", "value"):
            fields["kind"] = head
        else:
            raise ConfigError(
                f"unknown scheme label {label!r}: bad kind {head!r}")
        flag_fields = {token: (field_name, labelled)
                       for token, field_name, labelled in _FLAG_TOKENS}
        for token in rest:
            if token in flag_fields:
                field_name, labelled = flag_fields[token]
                fields[field_name] = labelled
                continue
            for prefix, field_name in _INT_TOKENS:
                if token.startswith(prefix) and token[len(prefix):].isdigit():
                    fields[field_name] = int(token[len(prefix):])
                    break
            else:
                raise ConfigError(
                    f"unknown scheme label {label!r}: bad suffix {token!r}")
        return cls(**fields)  # type: ignore[arg-type]


#: Canonical labels of the nine-point scheme matrix every correctness and
#: performance suite sweeps (one per implemented scheme family).
SCHEME_LABELS: Tuple[str, ...] = (
    "conventional",
    "storesets",
    "yla",
    "bloom",
    "dmdc",
    "dmdc-local",
    "dmdc-queue8",
    "garg",
    "value",
)


def scheme_matrix() -> Dict[str, SchemeConfig]:
    """The canonical matrix, label -> config, built through the codec."""
    return {label: SchemeConfig.from_label(label) for label in SCHEME_LABELS}


@dataclass(frozen=True)
class MachineConfig:
    """One machine configuration: core widths, queue sizes, memory system."""

    name: str = "config2"
    # Core
    width: int = 8                  # issue/decode/commit width
    rob_size: int = 256
    iq_int: int = 48
    iq_fp: int = 48
    lq_size: int = 96
    sq_size: int = 48
    regs_int: int = 200
    regs_fp: int = 200
    checking_table: int = 2048
    int_alu: int = 8
    int_muldiv: int = 2
    fp_alu: int = 8
    fp_muldiv: int = 2
    dcache_ports: int = 2
    # Front end
    fetch_buffer: int = 16
    decode_latency: int = 2
    branch_penalty: int = 7
    bimodal_entries: int = 4096
    gshare_entries: int = 8192
    gshare_history: int = 13
    meta_entries: int = 8192
    btb_entries: int = 4096
    btb_assoc: int = 4
    # Memory hierarchy
    l1i_size: int = 64 * 1024
    l1i_assoc: int = 1
    l1i_latency: int = 2
    l1d_size: int = 32 * 1024
    l1d_assoc: int = 2
    l1d_latency: int = 2
    l2_size: int = 1024 * 1024
    l2_assoc: int = 8
    l2_line_bytes: int = 128
    l2_latency: int = 15
    memory_latency: int = 120
    l1_line_bytes: int = 64
    # Replay / retry behaviour
    replay_penalty: int = 7
    reject_retry_delay: int = 3
    #: consecutive replays of the same trace index before the load is forced
    #: to issue non-speculatively (livelock guard; never fires in practice)
    replay_guard: int = 4
    # Wrong-path modelling
    wrongpath_loads: bool = True
    wrongpath_mean_loads: float = 1.0
    # Coherence traffic injection (invalidations per 1000 cycles; 0 = off)
    invalidation_rate: float = 0.0
    # Scheme
    scheme: SchemeConfig = field(default_factory=SchemeConfig)

    def __post_init__(self):
        if self.width <= 0 or self.rob_size <= 0:
            raise ConfigError("width and ROB size must be positive")
        if self.lq_size <= 0 or self.sq_size <= 0:
            raise ConfigError("LQ/SQ sizes must be positive")
        if self.rob_size < self.lq_size or self.rob_size < self.sq_size:
            raise ConfigError("ROB must be at least as large as LQ and SQ")

    # Cache config helpers -------------------------------------------------
    def l1i_config(self) -> CacheConfig:
        return CacheConfig("l1i", self.l1i_size, self.l1i_assoc, self.l1_line_bytes, self.l1i_latency)

    def l1d_config(self) -> CacheConfig:
        return CacheConfig("l1d", self.l1d_size, self.l1d_assoc, self.l1_line_bytes, self.l1d_latency)

    def l2_config(self) -> CacheConfig:
        return CacheConfig("l2", self.l2_size, self.l2_assoc, self.l2_line_bytes, self.l2_latency)

    def with_scheme(self, scheme: SchemeConfig) -> "MachineConfig":
        """A copy of this machine running a different checking scheme."""
        return replace(self, scheme=scheme)

    def with_overrides(self, **kwargs) -> "MachineConfig":
        """A copy with arbitrary field overrides."""
        return replace(self, **kwargs)

    def cache_key(self) -> str:
        """Deterministic canonical form covering every field (scheme nested).

        Any field change — machine or scheme — yields a different key, so
        content-addressed result caching can never conflate design points.
        """
        return json.dumps(asdict(self), sort_keys=True, separators=(",", ":"))


#: The paper's three simulated configurations (Table 1).
CONFIG1 = MachineConfig(
    name="config1",
    iq_int=32, iq_fp=32, rob_size=128, lq_size=48, sq_size=32,
    regs_int=100, regs_fp=100, checking_table=1024,
)
CONFIG2 = MachineConfig(name="config2")
CONFIG3 = MachineConfig(
    name="config3",
    iq_int=64, iq_fp=64, rob_size=512, lq_size=192, sq_size=64,
    regs_int=400, regs_fp=400, checking_table=4096,
)

CONFIGS: Tuple[MachineConfig, ...] = (CONFIG1, CONFIG2, CONFIG3)


def small_config(**kwargs) -> MachineConfig:
    """A deliberately tiny machine for fast unit tests."""
    defaults = dict(
        name="small",
        width=4,
        rob_size=32,
        iq_int=16,
        iq_fp=16,
        lq_size=16,
        sq_size=8,
        regs_int=64,
        regs_fp=64,
        checking_table=256,
        fetch_buffer=8,
        l1i_size=4096,
        l1d_size=4096,
        l2_size=64 * 1024,
    )
    defaults.update(kwargs)
    return MachineConfig(**defaults)
