"""Simulation results and derived metrics.

Raw counters live in :class:`~repro.stats.counters.CounterSet`; this class
adds the derived rates the paper reports (IPC, replays per million
committed instructions, safe-store percentage, checking-window shape).
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.stats.counters import CounterSet, Histogram

#: Histogram-valued fields, serialized alongside the scalar counters.
HISTOGRAM_FIELDS = (
    "window_instrs",
    "window_loads",
    "window_safe_loads",
    "window_unsafe_stores",
)

#: Replay-taxonomy counter names (Tables 3 and 5 of the paper).
FALSE_REPLAY_CATEGORIES = (
    "replay.false.addr.X",
    "replay.false.addr.Y",
    "replay.false.hash.before",
    "replay.false.hash.X",
    "replay.false.hash.Y",
    "replay.false.inv",
)


@dataclass
class SimulationResult:
    """Everything measured in one (workload, config, scheme) run."""

    workload: str
    group: str
    config_name: str
    scheme_name: str
    cycles: int
    committed: int
    counters: CounterSet
    window_instrs: Histogram = field(default_factory=Histogram)
    window_loads: Histogram = field(default_factory=Histogram)
    window_safe_loads: Histogram = field(default_factory=Histogram)
    window_unsafe_stores: Histogram = field(default_factory=Histogram)
    #: Wall-clock seconds spent inside ``Processor.run`` for this result.
    #: Host-dependent, so excluded from equality and from :meth:`to_dict`
    #: (architectural results stay bit-comparable across machines).
    sim_seconds: float = field(default=0.0, compare=False)

    # -- headline rates ---------------------------------------------------
    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def instructions_per_second(self) -> float:
        """Simulator throughput: committed instructions per wall-clock second."""
        return self.committed / self.sim_seconds if self.sim_seconds > 0 else 0.0

    def per_minstr(self, counter: str) -> float:
        """Events per one million committed instructions."""
        if not self.committed:
            return 0.0
        return 1e6 * self.counters[counter] / self.committed

    @property
    def replays_per_minstr(self) -> float:
        return self.per_minstr("replays")

    @property
    def false_replays_per_minstr(self) -> float:
        return self.per_minstr("replay.false") + self.per_minstr("replay.overflow")

    def false_replay_breakdown(self) -> Dict[str, float]:
        """Per-category false replays per million committed instructions."""
        return {name: self.per_minstr(name) for name in FALSE_REPLAY_CATEGORIES}

    # -- filtering metrics --------------------------------------------------
    @property
    def safe_store_fraction(self) -> float:
        """Fraction of resolved stores whose LQ check was filtered away.

        For filtered conventional schemes this is the filter hit rate; for
        DMDC it is the fraction classified safe by the YLA registers.
        """
        resolved = self.counters["stores.resolved"]
        if resolved:
            return self.counters["stores.safe"] / resolved
        # Unfiltered baseline: nothing is ever classified safe.
        return 0.0

    @property
    def safe_load_fraction(self) -> float:
        loads = self.counters["commit.loads"]
        return self.counters["commit.safe_loads"] / loads if loads else 0.0

    @property
    def checking_cycle_fraction(self) -> float:
        """Fraction of run cycles spent in DMDC checking mode."""
        return self.counters["checking.cycles_observed"] / self.cycles if self.cycles else 0.0

    # -- checking-window shape ------------------------------------------
    @property
    def mean_window_instrs(self) -> float:
        return self.window_instrs.mean

    @property
    def mean_window_loads(self) -> float:
        return self.window_loads.mean

    @property
    def mean_window_safe_loads(self) -> float:
        return self.window_safe_loads.mean

    @property
    def single_unsafe_store_window_fraction(self) -> float:
        """Fraction of checking windows containing exactly one unsafe store."""
        if not self.window_unsafe_stores.count:
            return 0.0
        ones = dict(self.window_unsafe_stores.items()).get(1, 0)
        return ones / self.window_unsafe_stores.count

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-friendly snapshot; :meth:`from_dict` round-trips it exactly."""
        return {
            "workload": self.workload,
            "group": self.group,
            "config_name": self.config_name,
            "scheme_name": self.scheme_name,
            "cycles": self.cycles,
            "committed": self.committed,
            "counters": self.counters.as_dict(),
            "histograms": {
                name: getattr(self, name).to_dict() for name in HISTOGRAM_FIELDS
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "SimulationResult":
        histograms = payload.get("histograms", {})
        return cls(
            workload=payload["workload"],
            group=payload["group"],
            config_name=payload["config_name"],
            scheme_name=payload["scheme_name"],
            cycles=int(payload["cycles"]),
            committed=int(payload["committed"]),
            counters=CounterSet.from_dict(payload["counters"]),
            **{
                name: Histogram.from_dict(histograms.get(name, {}))
                for name in HISTOGRAM_FIELDS
            },
        )

    def summary(self) -> Dict[str, float]:
        """Compact headline dictionary (examples / quick inspection)."""
        return {
            "ipc": self.ipc,
            "cycles": self.cycles,
            "committed": self.committed,
            "replays_per_minstr": self.replays_per_minstr,
            "safe_store_fraction": self.safe_store_fraction,
            "safe_load_fraction": self.safe_load_fraction,
            "checking_cycle_fraction": self.checking_cycle_fraction,
        }
