"""Front-end components: branch prediction and wrong-path modelling."""

from repro.frontend.branch_predictor import (
    Bimodal,
    Gshare,
    CombinedPredictor,
    BranchTargetBuffer,
)
from repro.frontend.wrongpath import WrongPathModel

__all__ = [
    "Bimodal",
    "Gshare",
    "CombinedPredictor",
    "BranchTargetBuffer",
    "WrongPathModel",
]
