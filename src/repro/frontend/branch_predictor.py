"""Branch direction and target prediction.

Reproduces the paper's Table 1 front end: a combined predictor choosing
between a 4K-entry bimodal table and an 8K-entry gshare with 13 bits of
global history, selected by an 8K-entry meta table, plus a 4K-entry 4-way
BTB.  All tables use 2-bit saturating counters.
"""

from repro.utils.bitops import is_power_of_two, log2_exact
from repro.errors import ConfigError


def _saturate_up(counter: int) -> int:
    return counter + 1 if counter < 3 else 3


def _saturate_down(counter: int) -> int:
    return counter - 1 if counter > 0 else 0


class Bimodal:
    """PC-indexed table of 2-bit counters."""

    def __init__(self, entries: int):
        if not is_power_of_two(entries):
            raise ConfigError("bimodal entries must be a power of two")
        self._mask = entries - 1
        self._table = [2] * entries  # weakly taken, SimpleScalar default

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        i = self._index(pc)
        self._table[i] = _saturate_up(self._table[i]) if taken else _saturate_down(self._table[i])


class Gshare:
    """Global-history XOR PC indexed table of 2-bit counters.

    The history register is speculatively updated at predict time and
    repaired on mispredictions by the caller via :meth:`set_history`.
    """

    def __init__(self, entries: int, history_bits: int):
        if not is_power_of_two(entries):
            raise ConfigError("gshare entries must be a power of two")
        self._mask = entries - 1
        self._table = [2] * entries
        self.history_bits = history_bits
        self._hist_mask = (1 << history_bits) - 1
        self.history = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool, history_at_predict: int) -> None:
        i = ((pc >> 2) ^ history_at_predict) & self._mask
        self._table[i] = _saturate_up(self._table[i]) if taken else _saturate_down(self._table[i])

    def push_history(self, taken: bool) -> None:
        self.history = ((self.history << 1) | int(taken)) & self._hist_mask

    def set_history(self, history: int) -> None:
        self.history = history & self._hist_mask


class BranchTargetBuffer:
    """Set-associative BTB with LRU replacement, tracking taken-branch targets."""

    def __init__(self, entries: int, assoc: int):
        if entries % assoc != 0 or not is_power_of_two(entries // assoc):
            raise ConfigError("BTB sets must be a power of two")
        self._sets = entries // assoc
        self._assoc = assoc
        self._mask = self._sets - 1
        self._tag_shift = log2_exact(self._sets)
        self._table = {}  # set index -> list of (tag, target) MRU first
        self.hits = 0
        self.misses = 0

    def _split(self, pc: int):
        word = pc >> 2
        return word & self._mask, word >> self._tag_shift

    def lookup(self, pc: int):
        """Return the predicted target or None on a BTB miss."""
        index, tag = self._split(pc)
        ways = self._table.get(index, ())
        for i, (t, target) in enumerate(ways):
            if t == tag:
                self.hits += 1
                if i:
                    ways.insert(0, ways.pop(i))
                return target
        self.misses += 1
        return None

    def install(self, pc: int, target: int) -> None:
        index, tag = self._split(pc)
        ways = self._table.setdefault(index, [])
        for i, (t, _) in enumerate(ways):
            if t == tag:
                ways.pop(i)
                break
        ways.insert(0, (tag, target))
        if len(ways) > self._assoc:
            ways.pop()


class CombinedPredictor:
    """Bimodal + gshare with a meta chooser (McFarling-style).

    :meth:`predict` returns ``(taken, snapshot)``; the snapshot is an opaque
    ``(history, bim, gsh, pred)`` tuple carrying the global-history value
    needed for an exact update and for history repair after a
    misprediction.  Treat it as opaque and pass it back to :meth:`resolve`.
    """

    def __init__(
        self,
        bimodal_entries: int = 4096,
        gshare_entries: int = 8192,
        history_bits: int = 13,
        meta_entries: int = 8192,
        btb_entries: int = 4096,
        btb_assoc: int = 4,
    ):
        self.bimodal = Bimodal(bimodal_entries)
        self.gshare = Gshare(gshare_entries, history_bits)
        if not is_power_of_two(meta_entries):
            raise ConfigError("meta entries must be a power of two")
        self._meta = [2] * meta_entries
        self._meta_mask = meta_entries - 1
        self.btb = BranchTargetBuffer(btb_entries, btb_assoc)
        self.lookups = 0
        self.mispredictions = 0

    def predict(self, pc: int):
        """Predict direction; speculatively push it into global history."""
        self.lookups += 1
        gshare = self.gshare
        word = pc >> 2
        history = gshare.history
        bim = self.bimodal._table[word & self.bimodal._mask] >= 2
        gsh = gshare._table[(word ^ history) & gshare._mask] >= 2
        taken = gsh if self._meta[word & self._meta_mask] >= 2 else bim
        gshare.history = ((history << 1) | taken) & gshare._hist_mask
        return taken, (history, bim, gsh, taken)

    def resolve(self, pc: int, taken: bool, snapshot) -> bool:
        """Update all tables with the true outcome; return mispredicted flag."""
        history, bim, gsh, pred = snapshot
        mispredicted = pred != taken
        word = pc >> 2
        bim_ok = bim == taken
        gsh_ok = gsh == taken
        if gsh_ok != bim_ok:
            meta = self._meta
            i = word & self._meta_mask
            meta[i] = _saturate_up(meta[i]) if gsh_ok else _saturate_down(meta[i])
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken, history)
        if mispredicted:
            self.mispredictions += 1
            # Repair speculative history: correct outcome appended to the
            # history that existed at prediction time.
            self.gshare.set_history(((history << 1) | int(taken)))
        return mispredicted

    @property
    def accuracy(self) -> float:
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredictions / self.lookups
