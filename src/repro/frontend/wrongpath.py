"""Wrong-path load injection.

A real out-of-order core keeps executing down the mispredicted path until
the branch resolves, and wrong-path loads update the YLA registers (the
paper, Section 3: "loads from wrong paths can corrupt YLA ... a simple and
effective remedy is to reset the YLA register to the branch's age during
recovery").  Full wrong-path simulation is out of scope for a trace-driven
model, so this component synthesises the *effect*: on every misprediction
it produces a burst of phantom load issues with ages younger than the
branch and addresses near the program's recent working set, which are fed
to the active dependence-checking scheme before recovery is signalled.
"""

from collections import deque
from typing import List, Tuple

from repro.utils.rng import DeterministicRng


class WrongPathModel:
    """Synthesises wrong-path load issues on branch mispredictions."""

    def __init__(
        self,
        rng: DeterministicRng,
        mean_loads_per_mispredict: float = 2.0,
        address_spread: int = 4096,
        enabled: bool = True,
    ):
        self.rng = rng
        self.enabled = enabled
        self.mean_loads = mean_loads_per_mispredict
        self.address_spread = address_spread
        self._recent_cap = 32
        # A bounded deque: append evicts the oldest entry in O(1), and it
        # sits directly on the load-issue hot path of both pipelines.
        self._recent_addrs: deque = deque(maxlen=self._recent_cap)
        self.injected = 0

    def observe_address(self, addr: int) -> None:
        """Track committed-path data addresses to anchor wrong-path ones."""
        self._recent_addrs.append(addr)

    def loads_for_mispredict(self, branch_seq: int) -> List[Tuple[int, int]]:
        """Return ``(age, address)`` pairs of phantom wrong-path loads.

        Ages are strictly younger (greater) than ``branch_seq`` so the YLA
        corruption and reset-to-branch-age recovery are exercised exactly
        as in hardware.
        """
        if not self.enabled or not self._recent_addrs:
            return []
        # Geometric burst: most mispredictions shadow only a couple of loads.
        p = 1.0 / (1.0 + self.mean_loads)
        count = self.rng.geometric(p)
        loads = []
        for i in range(count):
            base = self.rng.choice(self._recent_addrs)
            offset = self.rng.randint(-self.address_spread, self.address_spread) & ~0x7
            addr = max(0, base + offset)
            loads.append((branch_seq + 1 + i, addr))
        self.injected += len(loads)
        return loads
