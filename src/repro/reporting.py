"""Assembly of reproduced artifacts into a single report.

``collect_report`` walks a results directory (as written by
``pytest benchmarks/ --benchmark-only``) and emits one markdown document
ordered like the paper's evaluation section, with the paper's reference
values quoted next to each artifact for eyeball comparison.
"""

import pathlib
from typing import Dict, List, Optional

#: Display order and the paper's reference claims, per experiment id.
PAPER_REFERENCE: Dict[str, str] = {
    "fig2": "Paper: 71% (INT) / 80% (FP) filtered with 1 register; "
            "95-98% with 8 quad-word-interleaved; line interleaving clearly worse.",
    "fig3": "Paper: even BF=1024 filters fewer searches than 1 YLA register.",
    "yla_energy": "Paper: 32.4% LQ energy savings, ~1.7% processor-wide, "
                  "no performance impact.",
    "fig4": "Paper: 95-97% LQ energy savings; ~0.3% average slowdown "
            "(worst 1.3% INT / 3.5% FP); net savings 3-8% growing config1->3.",
    "table2": "Paper: windows of ~33 instructions with ~10 loads "
              "(3.6-4.1 safe); 10% (INT) / 2.5% (FP) of cycles in checking "
              "mode; 57% / 63% single-store windows; 81% / 94% safe loads.",
    "table3": "Paper: 168 (INT) / 35 (FP) false replays per Minstr; "
              "address-match X dominates (65% INT); hashing only 11% / 26%.",
    "table4": "Paper: local windows 13-25% shorter (25.3 / 28.9 instructions).",
    "table5": "Paper: 134 (INT) / 23.7 (FP) false replays per Minstr; "
              "Y-column (merged windows) mitigated.",
    "fig5": "Paper: both variants well under 1% mean slowdown; local improves "
            "the worst case, especially FP.",
    "table6": "Paper: moderate degradation up to 10 inv/1000cyc; at 100, "
              "false replays ~5x and slowdown ~1.2-1.4%.",
    "safe_loads": "Paper: 81% (INT) / 94% (FP) safe loads; without the "
                  "detector false replays roughly double (INT).",
    "checking_queue": "Paper: a 2K-entry table is roughly equivalent to a "
                      "16-entry associative queue in replay rate.",
    "sq_filter": "Paper: ~20% of loads are older than every in-flight store "
                 "(this model's SQ rarely drains, so it sees less).",
    "ablation_table_size": "Extension: diminishing returns past ~2K entries "
                           "(hash conflicts are not the dominant cause).",
    "ablation_wrongpath": "Extension: wrong-path loads erode filtering "
                          "monotonically; the reset remedy bounds the loss.",
    "ablation_storesets": "Extension: store-set prediction barely matters at "
                          "SPEC violation rates (the paper's claim) but "
                          "suppresses engineered alias storms.",
    "related_work": "Section 7 quantified: DMDC beats Garg's age-hash table "
                    "(no filtering, wider entries, flush-from-store replays) "
                    "and avoids value-based checking's bandwidth cost.",
}


def collect_report(results_dir, title: str = "Reproduced evaluation") -> str:
    """Render all archived experiment tables as one markdown document."""
    results = pathlib.Path(results_dir)
    lines: List[str] = [f"# {title}", ""]
    missing: List[str] = []
    for exp_id, reference in PAPER_REFERENCE.items():
        path = results / f"{exp_id}.txt"
        lines.append(f"## {exp_id}")
        lines.append("")
        lines.append(f"> {reference}")
        lines.append("")
        if path.exists():
            lines.append("```")
            lines.append(path.read_text().rstrip())
            lines.append("```")
        else:
            missing.append(exp_id)
            lines.append("*(not yet measured — run `pytest benchmarks/ "
                         "--benchmark-only`)*")
        lines.append("")
    if missing:
        lines.append(f"Missing artifacts: {', '.join(missing)}")
        lines.append("")
    return "\n".join(lines)


def write_report(results_dir, out_path: Optional[str] = None) -> str:
    """Write the collected report to ``out_path`` (default: stdout path)."""
    text = collect_report(results_dir)
    if out_path:
        pathlib.Path(out_path).write_text(text)
    return text


def sweep_report(ledger_path, baseline: Optional[str] = None):
    """Pivot a completed sweep ledger into a paper-figure-style report.

    Thin delegate to :func:`repro.sweeps.report_from_ledger` (imported
    lazily so assembling markdown reports does not pull the simulator
    stack in); returns a :class:`repro.sweeps.SweepReport` — call
    ``.render()`` for text or ``.to_dict()`` for the machine-readable
    artifact (see ``docs/sweeps.md``).
    """
    from repro.sweeps import report_from_ledger
    return report_from_ledger(str(ledger_path), baseline=baseline)
