"""YLA: Youngest-issued-Load-Age registers (paper Section 3).

A YLA register records the age (dynamic sequence number) of the youngest
load that has *issued*.  A resolving store older than that age may have a
premature younger load and must be checked; a store younger than it
provably has none and can skip the LQ search (a *YLA hit*).

With multiple registers, addresses are interleaved across banks at a
configurable granularity — quad-word (8 B) for store-load checking, cache
line (128 B) for the invalidation-window registers of Section 4.3 — and
each register tracks only the loads of its bank, sharpening the filter.

Wrong-path loads may push a register too far forward; correctness is
unaffected (the filter only becomes more conservative) but effectiveness
drops, so recovery resets each register to the branch's age when that is
older (the paper's remedy).
"""

from typing import List

from repro.errors import ConfigError
from repro.utils.bitops import is_power_of_two, log2_exact

#: Age value meaning "no load has issued yet" — older than every real age.
NO_LOAD = -1


class YlaFile:
    """A bank of YLA registers with power-of-two address interleaving."""

    def __init__(self, num_registers: int = 8, granularity_bytes: int = 8):
        if not is_power_of_two(num_registers):
            raise ConfigError("YLA register count must be a power of two")
        if not is_power_of_two(granularity_bytes):
            raise ConfigError("YLA interleaving granularity must be a power of two")
        self.num_registers = num_registers
        self.granularity_bytes = granularity_bytes
        self._shift = log2_exact(granularity_bytes)
        self._mask = num_registers - 1
        self._ages: List[int] = [NO_LOAD] * num_registers
        self.updates = 0
        self.compares = 0
        self.hits = 0

    def bank(self, addr: int) -> int:
        """Bank index for ``addr`` under this file's interleaving."""
        return (addr >> self._shift) & self._mask

    def observe_load_issue(self, addr: int, age: int) -> None:
        """A load issued: push its bank's register forward if younger."""
        self.updates += 1
        b = self.bank(addr)
        if age > self._ages[b]:
            self._ages[b] = age

    def youngest_for(self, addr: int) -> int:
        """Age recorded for ``addr``'s bank (``NO_LOAD`` when none)."""
        return self._ages[self.bank(addr)]

    def store_is_safe(self, addr: int, store_age: int) -> bool:
        """YLA check at store resolution (counts a compare).

        The store is safe — no younger load to a possibly-overlapping
        address has issued — when its bank's register holds an age older
        than the store's own.
        """
        self.compares += 1
        safe = self._ages[self.bank(addr)] < store_age
        if safe:
            self.hits += 1
        return safe

    def rollback(self, last_kept_age: int) -> None:
        """Recovery/squash repair: clamp every register to the kept age.

        All loads younger than ``last_kept_age`` were squashed, so each
        register may legally be pulled back to that age.  Pulling further
        back would be unsound; not pulling back at all would only cost
        filter effectiveness.
        """
        ages = self._ages
        for i in range(self.num_registers):
            if ages[i] > last_kept_age:
                ages[i] = last_kept_age

    @property
    def hit_rate(self) -> float:
        """Fraction of store checks that were filtered (YLA hits)."""
        return self.hits / self.compares if self.compares else 0.0

    def snapshot(self) -> List[int]:
        """Copy of the register contents (diagnostics/tests)."""
        return list(self._ages)
