"""Store-set memory dependence prediction (Chrysos & Emer, ISCA 1998).

The paper's related work ([7]): instead of (or on top of) detecting
violations, *predict* them away.  Loads and stores that ever caused a
violation are placed in a common **store set**; a load whose set has an
in-flight, unresolved store waits for it instead of issuing speculatively.

The paper deliberately does not model prediction ("true store-load replays
are very rare ... prediction and replay prevention mechanisms seem
unnecessary"); this implementation is an optional extension
(``SchemeConfig.store_sets``) that lets the repository quantify that
claim: with SPEC-like violation rates the predictor barely moves the
needle, while on engineered alias-heavy workloads it suppresses most true
replays (see ``experiments.ablation_storesets``).

Implementation follows the original SSIT/LFST design:

* **SSIT** (store-set id table), PC-indexed: maps instruction PCs to a
  store-set id.  A violation allocates/merges sets for the (load, store)
  PC pair.
* **LFST** (last fetched store table), set-indexed: tracks the youngest
  in-flight store of each set; a dispatching load in the same set must
  wait until that store's address resolves.
"""

from typing import Dict, Optional

from repro.errors import ConfigError
from repro.utils.bitops import is_power_of_two


class StoreSetPredictor:
    """SSIT/LFST store-set predictor."""

    def __init__(self, ssit_entries: int = 4096, max_sets: int = 128):
        if not is_power_of_two(ssit_entries):
            raise ConfigError("SSIT entries must be a power of two")
        if max_sets <= 0:
            raise ConfigError("need at least one store set")
        self._ssit_mask = ssit_entries - 1
        self.max_sets = max_sets
        self._ssit: Dict[int, int] = {}          # pc index -> set id
        self._lfst: Dict[int, int] = {}          # set id -> youngest in-flight store seq
        self._lfst_pc: Dict[int, int] = {}       # set id -> that store's pc (diagnostics)
        self._next_set = 0
        self.violations_recorded = 0
        self.merges = 0
        self.delays = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._ssit_mask

    def set_of(self, pc: int) -> Optional[int]:
        return self._ssit.get(self._index(pc))

    # ------------------------------------------------------------------
    def record_violation(self, load_pc: int, store_pc: int) -> None:
        """Train on one observed (or replayed) store->load violation."""
        self.violations_recorded += 1
        li, si = self._index(load_pc), self._index(store_pc)
        lset, sset = self._ssit.get(li), self._ssit.get(si)
        if lset is None and sset is None:
            new = self._next_set % self.max_sets
            self._next_set += 1
            self._ssit[li] = new
            self._ssit[si] = new
        elif lset is None:
            self._ssit[li] = sset
        elif sset is None:
            self._ssit[si] = lset
        elif lset != sset:
            # Merge: both adopt the smaller id (declining-id rule).
            winner = min(lset, sset)
            self.merges += 1
            self._ssit[li] = winner
            self._ssit[si] = winner

    # ------------------------------------------------------------------
    def store_dispatched(self, store_pc: int, store_seq: int) -> None:
        """A store entered the window: it becomes its set's youngest."""
        sset = self.set_of(store_pc)
        if sset is not None:
            self._lfst[sset] = store_seq
            self._lfst_pc[sset] = store_pc

    def store_resolved(self, store_pc: int, store_seq: int) -> None:
        """The store's address is known: dependents may go."""
        sset = self.set_of(store_pc)
        if sset is not None and self._lfst.get(sset) == store_seq:
            del self._lfst[sset]
            self._lfst_pc.pop(sset, None)

    def squash(self, last_kept_seq: int) -> None:
        """Remove squashed stores from the LFST."""
        for sset in [s for s, seq in self._lfst.items() if seq > last_kept_seq]:
            del self._lfst[sset]
            self._lfst_pc.pop(sset, None)

    # ------------------------------------------------------------------
    def blocking_store(self, load_pc: int, load_seq: int) -> Optional[int]:
        """Seq of the in-flight older store this load should wait for."""
        sset = self.set_of(load_pc)
        if sset is None:
            return None
        seq = self._lfst.get(sset)
        if seq is not None and seq < load_seq:
            self.delays += 1
            return seq
        return None
