"""Counting Bloom filter over issued-load addresses (Figure 3 baseline).

Models the address-only search filtering of Sethumadhavan et al. [18]: the
addresses of all in-flight *issued* loads are hashed (H0 — XOR folding)
into a table of small counters.  A resolving store probes the filter; a
zero counter proves no issued load to any aliasing address exists and the
LQ search is skipped.  Counters are decremented when loads commit or are
squashed, which is why they must count rather than be single bits.

Unlike YLA, the filter carries no age information: an *older* issued load
to the same bank defeats it, which is exactly the weakness Figure 3
quantifies.
"""

from typing import List

from repro.errors import ConfigError
from repro.utils.bitops import fold_xor, is_power_of_two, log2_exact


class CountingBloomFilter:
    """Single-hash (H0) counting Bloom filter keyed by quad-word address."""

    def __init__(self, entries: int, granularity_bytes: int = 8, counter_bits: int = 8):
        if not is_power_of_two(entries):
            raise ConfigError("bloom filter entries must be a power of two")
        if not is_power_of_two(granularity_bytes):
            raise ConfigError("bloom granularity must be a power of two")
        self.entries = entries
        self.granularity_bytes = granularity_bytes
        self.counter_max = (1 << counter_bits) - 1
        self._bits = log2_exact(entries)
        self._shift = log2_exact(granularity_bytes)
        self._counters: List[int] = [0] * entries
        self.inserts = 0
        self.removes = 0
        self.probes = 0
        self.hits = 0  # probe found counter == 0 -> search filtered
        self.saturations = 0

    def index(self, addr: int) -> int:
        """H0 hash: XOR-fold the quad-word address to the table width."""
        return fold_xor(addr >> self._shift, self._bits)

    def insert(self, addr: int) -> None:
        """A load issued: count its address in."""
        self.inserts += 1
        i = self.index(addr)
        if self._counters[i] < self.counter_max:
            self._counters[i] += 1
        else:
            # Saturated counters stick (conservative: never filtered again
            # until the run ends).  With 8-bit counters and bounded queue
            # occupancy this never fires in practice; counted for evidence.
            self.saturations += 1

    def remove(self, addr: int) -> None:
        """A counted load left the window (commit or squash)."""
        self.removes += 1
        i = self.index(addr)
        if self._counters[i] > 0 and self._counters[i] < self.counter_max:
            self._counters[i] -= 1

    def may_contain(self, addr: int) -> bool:
        """Probe at store resolution; False proves no aliasing issued load."""
        self.probes += 1
        present = self._counters[self.index(addr)] > 0
        if not present:
            self.hits += 1
        return present

    @property
    def filter_rate(self) -> float:
        """Fraction of probes that filtered the LQ search."""
        return self.hits / self.probes if self.probes else 0.0
