"""The paper's contribution: YLA-based filtering and DMDC.

Public surface:

* :class:`~repro.core.yla.YlaFile` — the Youngest-issued-Load-Age register
  file (Section 3), with configurable register count and address
  interleaving granularity.
* :class:`~repro.core.bloom.CountingBloomFilter` — the Sethumadhavan-style
  address-only filter the paper compares against (Figure 3).
* :class:`~repro.core.checking_table.CheckingTable` — DMDC's hash table with
  per-quad-word entries, 4-bit width bitmaps and WRT/INV bits (Section 4).
* :mod:`repro.core.schemes` — pluggable dependence-checking schemes:
  conventional associative LQ, YLA-filtered, bloom-filtered, and DMDC
  (global/local, hash-table or associative checking queue, with optional
  coherence support).
"""

from repro.core.yla import YlaFile
from repro.core.bloom import CountingBloomFilter
from repro.core.checking_table import CheckingTable
from repro.core.schemes import (
    CheckScheme,
    ConventionalScheme,
    YlaFilteredScheme,
    BloomFilteredScheme,
    DmdcScheme,
    build_scheme,
)

__all__ = [
    "YlaFile",
    "CountingBloomFilter",
    "CheckingTable",
    "CheckScheme",
    "ConventionalScheme",
    "YlaFilteredScheme",
    "BloomFilteredScheme",
    "DmdcScheme",
    "build_scheme",
]
