"""DMDC's checking table (paper Sections 4.2-4.4).

A direct-indexed hash table communicating address information from unsafe
stores (marked at commit) to later-committing loads (which merely index
it).  Entries are keyed by quad-word (8 B) address via the H0 XOR fold;
each entry carries:

* a 4-bit **WRT** bitmap — one bit per 2-byte granule of the quad word, so
  accesses narrower than a quad word don't falsely collide ("handling
  multiple data sizes", Section 4.4);
* one **INV** bit — set by external invalidations (Section 4.3).  A load
  hitting only INV is not replayed but *promotes* the granule bits to WRT,
  so a second in-window load to the location does replay, which is exactly
  the write-serialization condition.

The table is flash-cleared when a checking window terminates; clearing is
O(marked entries) here, mirroring a hardware flash-clear.
"""

from typing import Dict, Iterable, List, Tuple

from repro.errors import ConfigError
from repro.utils.bitops import fold_xor, is_power_of_two, log2_exact

QUAD_WORD = 8
GRANULE = 2  # bytes per WRT bitmap bit
FULL_BITMAP = 0xF


def granule_bitmap(addr: int, size: int) -> int:
    """Bitmap of 2-byte granules within the quad word touched by an access."""
    start = (addr & (QUAD_WORD - 1)) // GRANULE
    count = max(1, size // GRANULE)
    bits = 0
    for g in range(start, min(start + count, QUAD_WORD // GRANULE)):
        bits |= 1 << g
    return bits


class CheckingTable:
    """WRT/INV hash table indexed by folded quad-word address."""

    def __init__(self, entries: int):
        if not is_power_of_two(entries):
            raise ConfigError("checking table entries must be a power of two")
        self.entries = entries
        self._bits = log2_exact(entries)
        # index -> (wrt_bitmap, inv_bit); absent index means all-clear.
        self._marked: Dict[int, Tuple[int, int]] = {}
        self.writes = 0
        self.reads = 0
        self.clears = 0

    def index(self, addr: int) -> int:
        return fold_xor(addr >> 3, self._bits)

    # Store side -----------------------------------------------------------
    def mark_store(self, addr: int, size: int) -> int:
        """An unsafe store committed: set its WRT granule bits; return index."""
        self.writes += 1
        i = self.index(addr)
        wrt, inv = self._marked.get(i, (0, 0))
        self._marked[i] = (wrt | granule_bitmap(addr, size), inv)
        return i

    # Invalidation side ------------------------------------------------------
    def mark_invalidation(self, line_addr: int, line_bytes: int) -> List[int]:
        """Set the INV bit of every quad-word entry the line maps to."""
        indices = []
        for qw in range(line_addr, line_addr + line_bytes, QUAD_WORD):
            self.writes += 1
            i = self.index(qw)
            wrt, _ = self._marked.get(i, (0, 0))
            self._marked[i] = (wrt, 1)
            indices.append(i)
        return indices

    #: check_load outcomes
    CLEAR = 0
    WRT_HIT = 1
    PROMOTED = 2

    # Load side --------------------------------------------------------------
    def check_load(self, addr: int, size: int) -> int:
        """Index the table at load commit.

        Returns ``WRT_HIT`` (replay), ``PROMOTED`` (INV-only entry: the
        touched granules were promoted to WRT per Section 4.3, no replay),
        or ``CLEAR``.
        """
        self.reads += 1
        i = self.index(addr)
        entry = self._marked.get(i)
        if entry is None:
            return self.CLEAR
        wrt, inv = entry
        bits = granule_bitmap(addr, size)
        if wrt & bits:
            return self.WRT_HIT
        if inv:
            self._marked[i] = (wrt | bits, inv)
            return self.PROMOTED
        return self.CLEAR

    def wrt_overlaps(self, addr: int, size: int) -> bool:
        """Probe without side effects (diagnostics)."""
        entry = self._marked.get(self.index(addr))
        return bool(entry and entry[0] & granule_bitmap(addr, size))

    def clear(self) -> None:
        """Flash-clear at checking-window termination."""
        self.clears += 1
        self._marked.clear()

    @property
    def marked_count(self) -> int:
        return len(self._marked)

    def marked_indices(self) -> Iterable[int]:
        return self._marked.keys()
