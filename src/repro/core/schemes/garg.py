"""Age-hash LQ replacement of Garg et al. [11] (ISLPED 2006).

The design DMDC directly improves upon: the associative LQ is replaced by
a single hash table in which **each entry records the age of the youngest
issued load whose address hashes to it**.  A resolving store indexes the
table; a recorded age younger than the store means a possible premature
load, and the machine conservatively replays everything younger than the
store (the offending load cannot be identified without an LQ).

Contrasts with DMDC, per the paper's related-work discussion:

* every load writes an *age* (more bits) into the table, and every store
  reads it — no filtering, so far more table traffic;
* detection is at execution time, so squashed-path loads pollute the
  table (stale young ages cause false replays until commit age passes
  them); DMDC's commit-time marking avoids pollution by construction;
* a replay must flush from the store (no victim load is known), which is
  costlier than DMDC's replay-from-the-load.
"""

from typing import Dict, List, Optional

from repro.backend.dyninst import DynInstr
from repro.core.schemes.base import CheckScheme, SoaHooks
from repro.errors import ConfigError, SimulationError
from repro.utils.bitops import fold_xor, is_power_of_two, log2_exact
from repro.utils.ring import RingBuffer


class AgeHashTable:
    """Hash table of youngest-issued-load ages, keyed by quad-word address."""

    def __init__(self, entries: int):
        if not is_power_of_two(entries):
            raise ConfigError("age-hash table entries must be a power of two")
        self.entries = entries
        self._bits = log2_exact(entries)
        self._ages: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0

    def index(self, addr: int) -> int:
        return fold_xor(addr >> 3, self._bits)

    def observe_load(self, addr: int, age: int) -> None:
        self.writes += 1
        i = self.index(addr)
        if age > self._ages.get(i, -1):
            self._ages[i] = age

    def youngest_for(self, addr: int) -> int:
        self.reads += 1
        return self._ages.get(self.index(addr), -1)

    def rollback(self, last_kept_age: int) -> None:
        """Optional squash repair (the hardware version cannot afford it;
        modelled for the ablation of pollution effects)."""
        for i, age in list(self._ages.items()):
            if age > last_kept_age:
                self._ages[i] = last_kept_age


class GargAgeHashScheme(CheckScheme):
    """Replace the associative LQ with an age hash table [11]."""

    uses_associative_lq = False
    name = "garg"

    def __init__(self, table_entries: int = 2048, repair_on_squash: bool = False):
        super().__init__()
        self.table = AgeHashTable(table_entries)
        #: When True, squashes clamp table ages (an idealised variant the
        #: real hardware cannot implement cheaply); False models the
        #: pollution the paper says DMDC "naturally avoids".
        self.repair_on_squash = repair_on_squash
        self._rob: Optional[RingBuffer] = None

    def attach_rob(self, rob: RingBuffer) -> None:
        """Bind the ROB; needed to pick the flush point on a hit."""
        self._rob = rob

    def on_load_issue(self, load: DynInstr, cycle: int) -> Optional[DynInstr]:
        self.table.observe_load(load.addr, load.seq)
        return None

    def on_wrongpath_load(self, age: int, addr: int) -> None:
        self.table.observe_load(addr, age)
        self.stats.bump("garg.wrongpath_updates")

    def on_store_resolve(self, store: DynInstr, cycle: int) -> Optional[DynInstr]:
        if self._rob is None:
            raise SimulationError("Garg scheme not attached to the ROB")
        self.stats.bump("stores.resolved")
        youngest = self.table.youngest_for(store.addr)
        if youngest <= store.seq:
            self.stats.bump("stores.safe")
            if self.obs is not None:
                self.obs.store_classified(store, True, cycle)
            return None
        if self.obs is not None:
            self.obs.store_classified(store, False, cycle)
        # Possible premature load somewhere younger: flush from the first
        # instruction after the store (the table cannot name the load).
        for entry in self._rob:
            if entry.seq > store.seq:
                self.stats.bump("replay.execution_time")
                if entry.true_violation_store < 0 and not (
                    entry.is_load and entry.issue_cycle >= 0
                    and entry.addr >> 3 == store.addr >> 3
                ):
                    self.stats.bump("replay.false")
                return entry
        # Stale table entry (e.g. from a squashed load) with nothing
        # younger in flight: nothing to do.
        self.stats.bump("garg.stale_hits")
        return None

    def on_recovery(self, last_kept_seq: int) -> None:
        if self.repair_on_squash:
            self.table.rollback(last_kept_seq)

    def on_squash(self, last_kept_seq: int, squashed_loads: List[DynInstr]) -> None:
        if self.repair_on_squash:
            self.table.rollback(last_kept_seq)

    def soa_hooks(self, kernel):
        return _GargSoaHooks(self, kernel)

    def collect(self) -> None:
        self.stats["garg.table.reads"] = self.table.reads
        self.stats["garg.table.writes"] = self.table.writes
        self.stats["garg.table.entries"] = self.table.entries


class _GargSoaHooks(SoaHooks):
    """Slot-index transcription of :class:`GargAgeHashScheme`.

    The flush-point scan walks the kernel's ROB slot list instead of the
    processor's ring; both are age-ordered, so the first entry younger
    than the store is the same instruction.
    """

    has_load_issue = True
    has_store_resolve = True

    def on_load_issue(self, slot: int) -> None:
        k = self.k
        self.scheme.table.observe_load(k.addr[slot], k.seq[slot])

    def on_store_resolve(self, slot: int) -> int:
        s = self.scheme
        k = self.k
        s.stats.bump("stores.resolved")
        addr = k.addr[slot]
        sseq = k.seq[slot]
        if s.table.youngest_for(addr) <= sseq:
            s.stats.bump("stores.safe")
            return -1
        seq_ = k.seq
        line = addr >> 3
        for entry in k.rob:
            if seq_[entry] > sseq:
                s.stats.bump("replay.execution_time")
                if k.tvs[entry] < 0 and not (
                    k.isld[entry] and k.icyc[entry] >= 0
                    and k.addr[entry] >> 3 == line
                ):
                    s.stats.bump("replay.false")
                return entry
        s.stats.bump("garg.stale_hits")
        return -1
