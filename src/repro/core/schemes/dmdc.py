"""Delayed Memory Dependence Checking (paper Section 4).

The scheme removes the associative LQ entirely:

1. At store resolution the YLA registers classify the store *safe* or
   *unsafe*.  An unsafe store's checking boundary is the YLA value of its
   bank — the youngest load that may have issued prematurely.
2. In **global** mode a single ``end_check`` register takes the max of all
   unsafe stores' boundaries at *issue* time; in **local** mode each store
   carries its own boundary and extends the window only when it *commits*
   (Section 4.4), keeping windows smaller.
3. When an unsafe store commits it marks the checking table (or the
   associative checking queue) and opens the checking window; every
   subsequently committing non-safe load indexes the table, and a hit
   replays it.  The window closes — and the table flash-clears — once
   commit passes the boundary.

With coherence support (Section 4.3) a second, cache-line-interleaved YLA
set bounds invalidation-triggered windows, and table entries gain an INV
bit whose first load hit promotes it to WRT (write-serialization rule).

The scheme also implements the Table 3/5 replay taxonomy: every replay is
classified as true, address-match (timing approximation; in-window ``X`` or
merged-window ``Y``), hash-conflict (before / ``X`` / ``Y``), invalidation-
induced, or queue-overflow.  Classification uses simulator-side ground
truth (issue/resolve timestamps) that the modelled hardware does not have.
"""

from typing import List, Optional

from repro.backend.dyninst import DynInstr
from repro.core.checking_table import CheckingTable, granule_bitmap
from repro.core.schemes.base import CheckScheme, CommitDecision, SoaHooks
from repro.core.schemes.checking_queue import CheckingQueue
from repro.core.yla import NO_LOAD, YlaFile
from repro.utils.bitops import overlap


class _MarkedStore:
    """Classification record for one unsafe store active in the window.

    Constructed from scalars so both the object path (passing ``DynInstr``
    fields) and the SoA adapter (passing slot-array reads) share it.
    """

    __slots__ = ("seq", "addr", "size", "resolve_cycle", "boundary", "index", "bitmap")

    def __init__(self, seq: int, addr: int, size: int, resolve_cycle: int,
                 boundary: int, index: int):
        self.seq = seq
        self.addr = addr
        self.size = size
        self.resolve_cycle = resolve_cycle
        self.boundary = boundary
        self.index = index
        self.bitmap = granule_bitmap(addr, size)


class DmdcScheme(CheckScheme):
    """DMDC: commit-time, indexing-based dependence checking."""

    uses_associative_lq = False

    def __init__(
        self,
        table_entries: int = 2048,
        yla_registers: int = 8,
        local: bool = False,
        coherence: bool = False,
        safe_loads: bool = True,
        checking_queue_entries: Optional[int] = None,
        line_bytes: int = 128,
    ):
        super().__init__()
        self.local = local
        self.coherence = coherence
        self.safe_loads = safe_loads
        self.line_bytes = line_bytes
        self.yla = YlaFile(yla_registers, granularity_bytes=8)
        self.yla_line = YlaFile(yla_registers, granularity_bytes=line_bytes) if coherence else None
        if checking_queue_entries is not None:
            self.queue: Optional[CheckingQueue] = CheckingQueue(checking_queue_entries)
            self.table: Optional[CheckingTable] = None
        else:
            self.queue = None
            self.table = CheckingTable(table_entries)

        # end_check register(s)
        self._global_end = NO_LOAD   # global mode: pushed at unsafe-store issue
        self._active_end = NO_LOAD   # local mode + invalidation extensions
        #: Shadows the base-class attribute with live per-instance state;
        #: both cycle loops read it every cycle, so it stays a plain bool.
        self.checking_active = False
        self._activation_cycle = -1
        self._overflow_pending = False

        # per-window commit counters
        self._w_instrs = 0
        self._w_loads = 0
        self._w_safe_loads = 0
        self._w_unsafe_stores = 0

        # classification state
        self._marked_stores: List[_MarkedStore] = []
        self._promoted_indices = set()
        self._inv_marked_indices = set()

    @property
    def name(self) -> str:  # type: ignore[override]
        base = "dmdc-local" if self.local else "dmdc-global"
        if self.queue is not None:
            base += "-queue"
        if self.coherence:
            base += "-coherent"
        return base

    # ------------------------------------------------------------------
    # execution-time hooks
    # ------------------------------------------------------------------
    def on_load_issue(self, load: DynInstr, cycle: int) -> Optional[DynInstr]:
        self.yla.observe_load_issue(load.addr, load.seq)
        if self.yla_line is not None:
            self.yla_line.observe_load_issue(load.addr, load.seq)
        # The FIFO load queue records the hash key at issue (Section 4.2).
        if self.table is not None:
            load.hash_key = self.table.index(load.addr)
        self.stats.bump("lq.keys_written")
        return None

    def on_wrongpath_load(self, age: int, addr: int) -> None:
        self.yla.observe_load_issue(addr, age)
        if self.yla_line is not None:
            self.yla_line.observe_load_issue(addr, age)
        self.stats.bump("yla.wrongpath_updates")

    def on_store_resolve(self, store: DynInstr, cycle: int) -> Optional[DynInstr]:
        self.stats.bump("stores.resolved")
        word_safe = self.yla.store_is_safe(store.addr, store.seq)
        line_safe = (
            self.yla_line.store_is_safe(store.addr, store.seq)
            if self.yla_line is not None
            else False
        )
        if word_safe or line_safe:
            self.stats.bump("stores.safe")
            if self.obs is not None:
                self.obs.store_classified(store, True, cycle)
            return None
        self.stats.bump("stores.unsafe")
        if self.obs is not None:
            self.obs.store_classified(store, False, cycle)
        store.unsafe_store = True
        boundary = self.yla.youngest_for(store.addr)
        if self.yla_line is not None:
            boundary = min(boundary, self.yla_line.youngest_for(store.addr))
        store.window_end = boundary
        if not self.local:
            if boundary > self._global_end:
                self._global_end = boundary
        return None

    # ------------------------------------------------------------------
    # commit-time machinery
    # ------------------------------------------------------------------
    def _current_end(self) -> int:
        if self.local:
            return self._active_end
        return max(self._global_end, self._active_end)

    def end_check(self) -> int:
        """The live checking boundary (the ``end_check`` register contents).

        Public accessor for observability tooling: the sanitizer's window
        probe asserts the boundary never moves backwards while a window is
        open and that windows only terminate once commit passes it.
        """
        return self._current_end()

    def _activate(self, cycle: int) -> None:
        if not self.checking_active:
            self.checking_active = True
            self._activation_cycle = cycle
            self._w_instrs = 0
            self._w_loads = 0
            self._w_safe_loads = 0
            self._w_unsafe_stores = 0
            self.stats.bump("windows.opened")
            if self.obs is not None:
                self.obs.window_opened(cycle)

    def _terminate(self, cycle: int) -> None:
        self.stats.bump("windows.closed")
        self.stats.bump("checking.cycles", max(1, cycle - self._activation_cycle + 1))
        if self.obs is not None:
            self.obs.window_closed(cycle, self._w_instrs, self._w_loads,
                                   self._w_unsafe_stores)
        self.window_instrs.add(self._w_instrs)
        self.window_loads.add(self._w_loads)
        self.window_safe_loads.add(self._w_safe_loads)
        self.window_unsafe_stores.add(self._w_unsafe_stores)
        if self.table is not None:
            self.table.clear()
        else:
            self.queue.clear()
        self._marked_stores.clear()
        self._promoted_indices.clear()
        self._inv_marked_indices.clear()
        self.checking_active = False
        self._active_end = NO_LOAD
        self._overflow_pending = False

    def on_commit(self, instr: DynInstr, cycle: int) -> CommitDecision:
        decision = CommitDecision.OK
        if self.checking_active and instr.is_load:
            decision = self._commit_load_checked(instr, cycle)
            if decision == CommitDecision.REPLAY:
                # The squash renumbers everything younger; the window will
                # terminate at the next commit, which re-executes cleanly
                # after the already-committed stores.
                return decision
            self._w_loads += 1
            if instr.safe:
                self._w_safe_loads += 1
        if instr.is_store and instr.unsafe_store:
            self._commit_unsafe_store(instr, cycle)
        if self.checking_active:
            self._w_instrs += 1
            if instr.seq >= self._current_end():
                self._terminate(cycle)
        return decision

    def _commit_unsafe_store(self, store: DynInstr, cycle: int) -> None:
        self._activate(cycle)
        self._w_unsafe_stores += 1
        self.stats.bump("stores.unsafe_committed")
        if self.obs is not None:
            self.obs.table_marked(store, cycle)
        if self.table is not None:
            index = self.table.mark_store(store.addr, store.size)
            self._marked_stores.append(_MarkedStore(
                store.seq, store.addr, store.size, store.resolve_cycle,
                store.window_end, index))
        else:
            if not self.queue.insert(store.seq, store.addr, store.size):
                self._overflow_pending = True
            self._marked_stores.append(_MarkedStore(
                store.seq, store.addr, store.size, store.resolve_cycle,
                store.window_end, -1))
        if self.local and store.window_end > self._active_end:
            self._active_end = store.window_end

    def _commit_load_checked(self, load: DynInstr, cycle: int) -> CommitDecision:
        if load.safe and (self.safe_loads or load.guard_bypass):
            self.stats.bump("loads.safe_bypassed")
            return CommitDecision.OK
        if load.seq > self._current_end():
            # Past the boundary: this commit terminates the window below.
            return CommitDecision.OK
        self.stats.bump("loads.checked")
        if self._overflow_pending:
            self._overflow_pending = False
            self.stats.bump("replay.overflow")
            return CommitDecision.REPLAY
        if self.table is not None:
            outcome = self.table.check_load(load.addr, load.size)
            if outcome == CheckingTable.PROMOTED:
                self._promoted_indices.add(self.table.index(load.addr))
                self.stats.bump("inv.promotions")
            hit = outcome == CheckingTable.WRT_HIT
        else:
            hit = self.queue.check_load(load.addr, load.size) is not None
        if self.obs is not None:
            self.obs.table_probed(load, hit, cycle)
        if not hit:
            return CommitDecision.OK
        self._classify_replay(load)
        return CommitDecision.REPLAY

    # ------------------------------------------------------------------
    # replay taxonomy (Tables 3 and 5)
    # ------------------------------------------------------------------
    def _classify_replay(self, load: DynInstr) -> None:
        if load.true_violation_store >= 0:
            self.stats.bump("replay.true")
            return
        self.stats.bump("replay.false")
        addr_matches = [
            s for s in self._marked_stores
            if overlap(s.addr, s.size, load.addr, load.size)
        ]
        if addr_matches:
            self._classify_timing(load, addr_matches, "addr")
            return
        if self.table is not None:
            index = self.table.index(load.addr)
            bits = granule_bitmap(load.addr, load.size)
            conflicts = [
                s for s in self._marked_stores
                if s.index == index and (s.bitmap & bits)
            ]
            if conflicts:
                self._classify_timing(load, conflicts, "hash")
                return
            if index in self._promoted_indices or index in self._inv_marked_indices:
                self.stats.bump("replay.false.inv")
                return
            # A hash entry can also be hit through promotion granules set by
            # a different address; attribute to hashing.
            self.stats.bump("replay.false.hash.Y")
            return
        # Checking-queue mode: only exact-address matches exist.
        self.stats.bump("replay.false.addr.Y")

    def _classify_timing(self, load: DynInstr, stores: List[_MarkedStore], kind: str) -> None:
        issued_before = [s for s in stores if load.issue_cycle < s.resolve_cycle]
        in_window = [s for s in stores if s.seq < load.seq <= s.boundary]
        if kind == "hash" and issued_before:
            self.stats.bump("replay.false.hash.before")
        elif in_window:
            self.stats.bump(f"replay.false.{kind}.X")
        else:
            self.stats.bump(f"replay.false.{kind}.Y")

    # ------------------------------------------------------------------
    # recovery / coherence
    # ------------------------------------------------------------------
    def on_recovery(self, last_kept_seq: int) -> None:
        self.yla.rollback(last_kept_seq)
        if self.yla_line is not None:
            self.yla_line.rollback(last_kept_seq)

    def on_squash(self, last_kept_seq: int, squashed_loads: List[DynInstr]) -> None:
        self.yla.rollback(last_kept_seq)
        if self.yla_line is not None:
            self.yla_line.rollback(last_kept_seq)

    def on_invalidation(self, line_addr: int, line_bytes: int, cycle: int,
                        oldest_inflight_seq: int) -> None:
        if not self.coherence or self.yla_line is None or self.table is None:
            return
        self.stats.bump("inv.received")
        youngest = self.yla_line.youngest_for(line_addr)
        if youngest < oldest_inflight_seq:
            # No in-flight issued load to this line's bank: nothing to do.
            self.stats.bump("inv.filtered")
            return
        self.stats.bump("inv.marked")
        for index in self.table.mark_invalidation(line_addr, line_bytes):
            self._inv_marked_indices.add(index)
        self._activate(cycle)
        if youngest > self._active_end:
            self._active_end = youngest

    def finalize(self, cycle: int) -> None:
        if self.checking_active:
            self._terminate(cycle)

    def soa_hooks(self, kernel):
        if self.coherence:
            # The line-interleaved YLA / INV-bit machinery is exercised by
            # invalidation runs only, which the SoA gate already excludes;
            # stay on the object path for any coherent configuration.
            return None
        return _DmdcSoaHooks(self, kernel)

    def collect(self) -> None:
        self.stats["yla.compares"] = self.yla.compares
        self.stats["yla.updates"] = self.yla.updates
        if self.yla_line is not None:
            self.stats["yla.compares"] += self.yla_line.compares
            self.stats["yla.updates"] += self.yla_line.updates
        if self.table is not None:
            self.stats["table.reads"] = self.table.reads
            self.stats["table.writes"] = self.table.writes
            self.stats["table.clears"] = self.table.clears
            self.stats["table.entries"] = self.table.entries
        if self.queue is not None:
            self.stats["ckq.reads"] = self.queue.reads
            self.stats["ckq.writes"] = self.queue.writes
            self.stats["ckq.entries"] = self.queue.entries
            self.stats["ckq.overflows"] = self.queue.overflows


class _DmdcSoaHooks(SoaHooks):
    """Slot-index transcription of :class:`DmdcScheme` (coherence off).

    Component calls (YLA, table/queue) and ``stats.bump`` sites match the
    object-path hooks one for one; only the FIFO-LQ ``hash_key`` write is
    skipped — the field is write-only in the object path (its energy cost
    is charged via ``lq.keys_written``, which is still bumped).
    """

    has_load_issue = True
    has_store_resolve = True
    commit_mode = 2

    def on_load_issue(self, slot: int) -> None:
        s = self.scheme
        k = self.k
        s.yla.observe_load_issue(k.addr[slot], k.seq[slot])
        s.stats.bump("lq.keys_written")

    def on_store_resolve(self, slot: int) -> int:
        s = self.scheme
        k = self.k
        s.stats.bump("stores.resolved")
        addr = k.addr[slot]
        sseq = k.seq[slot]
        if s.yla.store_is_safe(addr, sseq):
            s.stats.bump("stores.safe")
            return -1
        s.stats.bump("stores.unsafe")
        k.unsafe[slot] = True
        boundary = s.yla.youngest_for(addr)
        k.wend[slot] = boundary
        if not s.local:
            if boundary > s._global_end:
                s._global_end = boundary
        return -1

    def on_commit(self, slot: int, cycle: int) -> bool:
        s = self.scheme
        k = self.k
        if s.checking_active and k.isld[slot]:
            if self._commit_load_checked(slot):
                return True
            s._w_loads += 1
            if k.safe[slot]:
                s._w_safe_loads += 1
        if k.isst[slot] and k.unsafe[slot]:
            self._commit_unsafe_store(slot, cycle)
        if s.checking_active:
            s._w_instrs += 1
            if k.seq[slot] >= s._current_end():
                s._terminate(cycle)
        return False

    def _commit_unsafe_store(self, slot: int, cycle: int) -> None:
        s = self.scheme
        k = self.k
        s._activate(cycle)
        s._w_unsafe_stores += 1
        s.stats.bump("stores.unsafe_committed")
        addr = k.addr[slot]
        size = k.size[slot]
        if s.table is not None:
            index = s.table.mark_store(addr, size)
        else:
            index = -1
            if not s.queue.insert(k.seq[slot], addr, size):
                s._overflow_pending = True
        s._marked_stores.append(_MarkedStore(
            k.seq[slot], addr, size, k.rcyc[slot], k.wend[slot], index))
        if s.local and k.wend[slot] > s._active_end:
            s._active_end = k.wend[slot]

    def _commit_load_checked(self, slot: int) -> bool:
        s = self.scheme
        k = self.k
        if k.safe[slot] and (s.safe_loads or k.gbp[slot]):
            s.stats.bump("loads.safe_bypassed")
            return False
        if k.seq[slot] > s._current_end():
            # Past the boundary: this commit terminates the window.
            return False
        s.stats.bump("loads.checked")
        if s._overflow_pending:
            s._overflow_pending = False
            s.stats.bump("replay.overflow")
            return True
        addr = k.addr[slot]
        size = k.size[slot]
        if s.table is not None:
            outcome = s.table.check_load(addr, size)
            if outcome == CheckingTable.PROMOTED:
                s._promoted_indices.add(s.table.index(addr))
                s.stats.bump("inv.promotions")
            hit = outcome == CheckingTable.WRT_HIT
        else:
            hit = s.queue.check_load(addr, size) is not None
        if not hit:
            return False
        self._classify_replay(slot)
        return True

    def _classify_replay(self, slot: int) -> None:
        s = self.scheme
        k = self.k
        if k.tvs[slot] >= 0:
            s.stats.bump("replay.true")
            return
        s.stats.bump("replay.false")
        l_addr = k.addr[slot]
        l_size = k.size[slot]
        addr_matches = [
            m for m in s._marked_stores
            if overlap(m.addr, m.size, l_addr, l_size)
        ]
        if addr_matches:
            self._classify_timing(slot, addr_matches, "addr")
            return
        if s.table is not None:
            index = s.table.index(l_addr)
            bits = granule_bitmap(l_addr, l_size)
            conflicts = [
                m for m in s._marked_stores
                if m.index == index and (m.bitmap & bits)
            ]
            if conflicts:
                self._classify_timing(slot, conflicts, "hash")
                return
            if index in s._promoted_indices or index in s._inv_marked_indices:
                s.stats.bump("replay.false.inv")
                return
            s.stats.bump("replay.false.hash.Y")
            return
        s.stats.bump("replay.false.addr.Y")

    def _classify_timing(self, slot: int, stores: List[_MarkedStore], kind: str) -> None:
        s = self.scheme
        k = self.k
        icyc = k.icyc[slot]
        lseq = k.seq[slot]
        issued_before = any(icyc < m.resolve_cycle for m in stores)
        in_window = any(m.seq < lseq <= m.boundary for m in stores)
        if kind == "hash" and issued_before:
            s.stats.bump("replay.false.hash.before")
        elif in_window:
            s.stats.bump(f"replay.false.{kind}.X")
        else:
            s.stats.bump(f"replay.false.{kind}.Y")
