"""Construction of dependence-checking schemes from a scheme config."""

from repro.core.schemes.base import CheckScheme
from repro.core.schemes.conventional import (
    BloomFilteredScheme,
    ConventionalScheme,
    YlaFilteredScheme,
)
from repro.core.schemes.dmdc import DmdcScheme
from repro.core.schemes.garg import GargAgeHashScheme
from repro.core.schemes.value import ValueBasedScheme
from repro.errors import ConfigError


def build_scheme(scheme_config, machine_config) -> CheckScheme:
    """Instantiate the scheme named by ``scheme_config.kind``.

    ``machine_config`` supplies structure sizes (checking table, cache line)
    so one scheme config can be reused across the paper's three machine
    configurations.
    """
    kind = scheme_config.kind
    line_bytes = machine_config.l2_line_bytes
    if kind == "conventional":
        return ConventionalScheme(coherence=scheme_config.coherence)
    if kind == "yla":
        return YlaFilteredScheme(
            num_registers=scheme_config.yla_registers,
            granularity_bytes=scheme_config.yla_granularity,
            coherence=scheme_config.coherence,
        )
    if kind == "bloom":
        return BloomFilteredScheme(
            entries=scheme_config.bloom_entries,
            coherence=scheme_config.coherence,
        )
    if kind == "garg":
        table_entries = scheme_config.table_entries or machine_config.checking_table
        return GargAgeHashScheme(table_entries=table_entries)
    if kind == "value":
        return ValueBasedScheme()
    if kind == "dmdc":
        table_entries = scheme_config.table_entries or machine_config.checking_table
        return DmdcScheme(
            table_entries=table_entries,
            yla_registers=scheme_config.yla_registers,
            local=scheme_config.local,
            coherence=scheme_config.coherence,
            safe_loads=scheme_config.safe_loads,
            checking_queue_entries=scheme_config.checking_queue_entries,
            line_bytes=line_bytes,
        )
    raise ConfigError(f"unknown scheme kind {kind!r}")
