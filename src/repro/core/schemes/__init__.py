"""Pluggable memory-dependence-checking schemes."""

from repro.core.schemes.base import CheckScheme, CommitDecision
from repro.core.schemes.conventional import (
    ConventionalScheme,
    YlaFilteredScheme,
    BloomFilteredScheme,
)
from repro.core.schemes.dmdc import DmdcScheme
from repro.core.schemes.garg import GargAgeHashScheme
from repro.core.schemes.value import ValueBasedScheme
from repro.core.schemes.factory import build_scheme

__all__ = [
    "CheckScheme",
    "CommitDecision",
    "ConventionalScheme",
    "YlaFilteredScheme",
    "BloomFilteredScheme",
    "DmdcScheme",
    "GargAgeHashScheme",
    "ValueBasedScheme",
    "build_scheme",
]
