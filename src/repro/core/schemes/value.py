"""Value-based memory ordering of Cain & Lipasti [5] (ISCA 2004).

The other end of the design space in the paper's related work: ignore
address and timing information entirely.  Every load **re-executes at
commit** and compares the returned value with the value it used; a
mismatch (caused by an ordering violation) triggers a replay.  No load
queue of any kind is needed — the price is one extra data-cache access
per committed load ("the downside of the approach is the elevated memory
bandwidth requirement").

The timing model does not carry data values; the simulator's ground-truth
violation flag stands in for the value comparison (it is exactly the set
of loads whose re-executed value would differ).  The pipeline charges the
commit-time cache re-access when ``reexecutes_loads`` is set, which is
where the bandwidth/energy cost shows up in the evaluation.

The original paper adds replay/filtering optimisations to cut the
re-execution rate; this implements the naive scheme the comparison in
Section 7 refers to.
"""

from repro.backend.dyninst import DynInstr
from repro.core.schemes.base import CheckScheme, CommitDecision, SoaHooks


class ValueBasedScheme(CheckScheme):
    """Commit-time load re-execution; no LQ, no searches, no filtering."""

    uses_associative_lq = False
    #: The pipeline re-accesses the D-cache for every committing load.
    reexecutes_loads = True
    name = "value"

    def on_commit(self, instr: DynInstr, cycle: int) -> CommitDecision:
        if not instr.is_load:
            return CommitDecision.OK
        self.stats.bump("value.reexecutions")
        if instr.true_violation_store >= 0:
            # The re-executed value differs: squash and refetch the load.
            self.stats.bump("replay.true")
            return CommitDecision.REPLAY
        return CommitDecision.OK

    def soa_hooks(self, kernel):
        return _ValueSoaHooks(self, kernel)


class _ValueSoaHooks(SoaHooks):
    """Slot-index transcription of :class:`ValueBasedScheme`: the kernel
    charges the commit-time D-cache re-access itself (``reexecutes_loads``);
    only the value comparison lives here."""

    commit_mode = 1

    def on_commit_load(self, slot: int) -> bool:
        s = self.scheme
        s.stats.bump("value.reexecutions")
        if self.k.tvs[slot] >= 0:
            s.stats.bump("replay.true")
            return True
        return False
