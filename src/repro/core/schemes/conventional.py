"""Conventional associative-LQ checking, with optional search filters.

``ConventionalScheme`` is the paper's baseline (Section 2): every resolving
store CAM-searches the LQ for younger issued loads to the same address and
replays from the oldest match.

``YlaFilteredScheme`` (Section 3) and ``BloomFilteredScheme`` (Figure 3 /
[18]) keep that machinery but skip the search when their filter proves no
younger (YLA) / no aliasing (BF) issued load exists.  A filtered search is
counted separately — that count is the energy the filter saves.
"""

from typing import List, Optional

from repro.backend.dyninst import DynInstr
from repro.core.bloom import CountingBloomFilter
from repro.core.schemes.base import CheckScheme, SoaHooks
from repro.core.yla import YlaFile
from repro.errors import SimulationError
from repro.lsq.queues import LoadQueue, StoreQueue, lq_violation_search_soa


class ConventionalScheme(CheckScheme):
    """Baseline: unfiltered associative LQ search at store resolution."""

    uses_associative_lq = True
    name = "conventional"

    def __init__(self, coherence: bool = False):
        super().__init__()
        self.coherence = coherence
        self.lq: Optional[LoadQueue] = None
        self.sq: Optional[StoreQueue] = None
        self.line_bytes = 128

    def attach(self, lq: LoadQueue, sq: StoreQueue, line_bytes: int) -> None:
        """Bind the pipeline's queues; called once by the processor."""
        self.lq = lq
        self.sq = sq
        self.line_bytes = line_bytes

    # ------------------------------------------------------------------
    def _should_search(self, store: DynInstr) -> bool:
        """Filter hook; the baseline always searches."""
        return True

    def on_store_resolve(self, store: DynInstr, cycle: int) -> Optional[DynInstr]:
        if self.lq is None:
            raise SimulationError("scheme not attached to queues")
        self.stats.bump("stores.resolved")
        if not self._should_search(store):
            # The queue attribute is the canonical count; the processor
            # exports it as ``lq.searches_filtered`` when building the
            # result (bumping scheme stats here as well double-counted it).
            self.lq.searches_filtered += 1
            if self.obs is not None:
                self.obs.store_classified(store, True, cycle)
            return None
        if self.obs is not None:
            self.obs.store_classified(store, False, cycle)
        self.stats.bump("lq.searches")
        victim = self.lq.search_younger_issued(store)
        if victim is not None:
            self.stats.bump("replay.execution_time")
        return victim

    def on_load_issue(self, load: DynInstr, cycle: int) -> Optional[DynInstr]:
        if not self.coherence:
            return None
        # Load-load ordering (Section 2): the issuing load searches the LQ
        # for *younger* issued loads to the same line that saw an
        # invalidation; replay from the oldest such load.
        self.lq.inv_searches += 1
        line = load.addr & ~(self.line_bytes - 1)
        for other in self.lq.ring:
            if (
                other.seq > load.seq
                and other.issue_cycle >= 0
                and other.inv_marked
                and (other.addr & ~(self.line_bytes - 1)) == line
            ):
                self.stats.bump("replay.coherence")
                return other
        return None

    def on_invalidation(self, line_addr: int, line_bytes: int, cycle: int,
                        oldest_inflight_seq: int) -> None:
        if not self.coherence:
            return
        # Every invalidation searches the whole LQ to mark matching loads.
        self.lq.inv_searches += 1
        for load in self.lq.ring:
            if load.issue_cycle >= 0 and (load.addr & ~(line_bytes - 1)) == line_addr:
                load.inv_marked = True

    def soa_hooks(self, kernel):
        if self.coherence:
            # Load-load ordering walks ``inv_marked`` object state the SoA
            # slots don't carry; coherent configs stay on the object path.
            return None
        return _ConventionalSoaHooks(self, kernel)


class YlaFilteredScheme(ConventionalScheme):
    """Conventional LQ + YLA-based search filtering (Section 3)."""

    name = "yla"

    def __init__(self, num_registers: int = 8, granularity_bytes: int = 8,
                 coherence: bool = False):
        super().__init__(coherence=coherence)
        self.yla = YlaFile(num_registers, granularity_bytes)

    def _should_search(self, store: DynInstr) -> bool:
        safe = self.yla.store_is_safe(store.addr, store.seq)
        if safe:
            self.stats.bump("stores.safe")
        return not safe

    def on_load_issue(self, load: DynInstr, cycle: int) -> Optional[DynInstr]:
        self.yla.observe_load_issue(load.addr, load.seq)
        return super().on_load_issue(load, cycle)

    def on_wrongpath_load(self, age: int, addr: int) -> None:
        self.yla.observe_load_issue(addr, age)
        self.stats.bump("yla.wrongpath_updates")

    def on_recovery(self, last_kept_seq: int) -> None:
        self.yla.rollback(last_kept_seq)

    def on_squash(self, last_kept_seq: int, squashed_loads: List[DynInstr]) -> None:
        self.yla.rollback(last_kept_seq)

    def soa_hooks(self, kernel):
        if self.coherence:
            return None
        return _YlaSoaHooks(self, kernel)

    def collect(self) -> None:
        self.stats["yla.compares"] = self.yla.compares
        self.stats["yla.updates"] = self.yla.updates


class BloomFilteredScheme(ConventionalScheme):
    """Conventional LQ + counting-Bloom-filter search filtering [18]."""

    name = "bloom"

    def __init__(self, entries: int = 1024, coherence: bool = False):
        super().__init__(coherence=coherence)
        self.bloom = CountingBloomFilter(entries)
        self._phantoms: List[int] = []

    def _should_search(self, store: DynInstr) -> bool:
        present = self.bloom.may_contain(store.addr)
        if not present:
            self.stats.bump("stores.safe")
        return present

    def on_load_issue(self, load: DynInstr, cycle: int) -> Optional[DynInstr]:
        self.bloom.insert(load.addr)
        return super().on_load_issue(load, cycle)

    def on_wrongpath_load(self, age: int, addr: int) -> None:
        # Phantom wrong-path loads enter the filter and are backed out at
        # recovery, matching the counting filter's squash behaviour.
        self.bloom.insert(addr)
        self._phantoms.append(addr)

    def on_recovery(self, last_kept_seq: int) -> None:
        for addr in self._phantoms:
            self.bloom.remove(addr)
        self._phantoms.clear()

    def on_squash(self, last_kept_seq: int, squashed_loads: List[DynInstr]) -> None:
        for load in squashed_loads:
            if load.issue_cycle >= 0:
                self.bloom.remove(load.addr)

    def on_commit(self, instr: DynInstr, cycle: int):
        if instr.is_load and instr.issue_cycle >= 0:
            self.bloom.remove(instr.addr)
        return super().on_commit(instr, cycle)

    def soa_hooks(self, kernel):
        if self.coherence:
            return None
        return _BloomSoaHooks(self, kernel)

    def collect(self) -> None:
        self.stats["bloom.probes"] = self.bloom.probes
        self.stats["bloom.inserts"] = self.bloom.inserts
        self.stats["bloom.removes"] = self.bloom.removes
        self.stats["bloom.entries"] = self.bloom.entries
        self.stats["bloom.saturations"] = self.bloom.saturations


class _ConventionalSoaHooks(SoaHooks):
    """Slot-index transcription of :class:`ConventionalScheme`.

    ``stats.bump`` sites match the object-path hooks one for one; the
    LQ search-count attributes (which the object path bumps inside
    :meth:`LoadQueue.search_younger_issued`) are batched in locals and
    folded back once per run.
    """

    has_store_resolve = True

    def __init__(self, scheme, kernel):
        super().__init__(scheme, kernel)
        self._searches = 0
        self._filtered = 0

    def _search(self, slot: int) -> int:
        """The unfiltered path: bump, search the slot-array LQ, classify."""
        s = self.scheme
        k = self.k
        s.stats.bump("lq.searches")
        self._searches += 1
        addr = k.addr[slot]
        victim = lq_violation_search_soa(
            k.lq, k.seq, k.addr, k.size, k.icyc,
            k.seq[slot], addr, addr + k.size[slot])
        if victim >= 0:
            s.stats.bump("replay.execution_time")
        return victim

    def on_store_resolve(self, slot: int) -> int:
        self.scheme.stats.bump("stores.resolved")
        return self._search(slot)

    def fold(self) -> None:
        lq = self.scheme.lq
        lq.searches += self._searches
        lq.searches_filtered += self._filtered


class _YlaSoaHooks(_ConventionalSoaHooks):
    """:class:`YlaFilteredScheme`: YLA probe decides whether to search."""

    has_load_issue = True

    def on_load_issue(self, slot: int) -> None:
        k = self.k
        self.scheme.yla.observe_load_issue(k.addr[slot], k.seq[slot])

    def on_store_resolve(self, slot: int) -> int:
        s = self.scheme
        k = self.k
        s.stats.bump("stores.resolved")
        if s.yla.store_is_safe(k.addr[slot], k.seq[slot]):
            s.stats.bump("stores.safe")
            self._filtered += 1
            return -1
        return self._search(slot)


class _BloomSoaHooks(_ConventionalSoaHooks):
    """:class:`BloomFilteredScheme`: counting-BF probe plus commit/squash
    removals (why this adapter wants the squashed-load addresses)."""

    has_load_issue = True
    commit_mode = 1
    wants_squashed_loads = True

    def on_load_issue(self, slot: int) -> None:
        self.scheme.bloom.insert(self.k.addr[slot])

    def on_store_resolve(self, slot: int) -> int:
        s = self.scheme
        s.stats.bump("stores.resolved")
        if not s.bloom.may_contain(self.k.addr[slot]):
            s.stats.bump("stores.safe")
            self._filtered += 1
            return -1
        return self._search(slot)

    def on_commit_load(self, slot: int) -> bool:
        k = self.k
        if k.icyc[slot] >= 0:
            self.scheme.bloom.remove(k.addr[slot])
        return False

    def on_squash(self, last_kept_seq: int, squashed_load_addrs) -> None:
        # The kernel pre-filters to issued loads (issue_cycle >= 0), so
        # this is exactly the object path's removal loop.
        remove = self.scheme.bloom.remove
        for addr in squashed_load_addrs:
            remove(addr)
