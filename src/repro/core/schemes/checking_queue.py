"""Associative checking queue — the hash-table alternative of Section 4.4.

Instead of hashing unsafe-store addresses into a table, keep them (exact,
with sizes) in a small associative queue.  Loads are checked against every
valid entry, so hash-conflict false replays disappear; the price is a
forced replay whenever the queue cannot accept a new unsafe store.
"""

from typing import List, Optional, Tuple

from repro.errors import ConfigError
from repro.utils.bitops import overlap


class CheckingQueue:
    """Bounded associative store-address queue for DMDC."""

    def __init__(self, entries: int):
        if entries <= 0:
            raise ConfigError("checking queue needs at least one entry")
        self.entries = entries
        self._valid: List[Tuple[int, int, int]] = []  # (seq, addr, size)
        self.writes = 0
        self.reads = 0
        self.clears = 0
        self.overflows = 0

    def insert(self, seq: int, addr: int, size: int) -> bool:
        """Record a committed unsafe store; False signals an overflow."""
        self.writes += 1
        if len(self._valid) >= self.entries:
            self.overflows += 1
            return False
        self._valid.append((seq, addr, size))
        return True

    def check_load(self, addr: int, size: int) -> Optional[int]:
        """Associative check at load commit; returns matching store seq."""
        self.reads += 1
        for seq, s_addr, s_size in self._valid:
            if overlap(s_addr, s_size, addr, size):
                return seq
        return None

    def clear(self) -> None:
        self.clears += 1
        self._valid.clear()

    @property
    def occupancy(self) -> int:
        return len(self._valid)
