"""Interface between the pipeline and a dependence-checking scheme.

The pipeline owns the machinery every design shares (speculative load
issue, SQ forwarding/rejection, squash, commit order); a scheme only
decides *how premature loads are detected*.  The hooks mirror the
micro-architectural events of the paper:

=====================  ====================================================
hook                   corresponds to
=====================  ====================================================
``on_load_issue``      load executes: YLA update / BF insert / hash-key
                       record; conventional coherence load-load check
``on_store_resolve``   store address resolves: conventional LQ search, or
                       filtering, or DMDC safe/unsafe classification
``on_commit``          in-order retirement: DMDC marking, checking mode,
                       window termination
``on_recovery``        branch misprediction recovery (YLA reset remedy)
``on_squash``          replay squash (same repair plus BF bookkeeping)
``on_invalidation``    external coherence invalidation
=====================  ====================================================

``on_store_resolve``/``on_load_issue`` may return a load to replay *now*
(execution-time detection); ``on_commit`` may decide the committing load
itself must replay (DMDC's commit-time detection).
"""

import enum
from typing import List, Optional

from repro.backend.dyninst import DynInstr
from repro.stats.counters import CounterSet, Histogram

#: The scheme protocol, by name -> number of arguments after ``self``.
#: This is the single source of truth the ``repro check`` lint pass
#: (rule REPRO007) validates scheme classes against: a subclass defining a
#: hook-shaped method that is *not* listed here (e.g. ``on_comit``) would
#: silently never be called by the pipeline.
PROTOCOL_HOOKS = {
    "on_load_issue": 2,
    "on_wrongpath_load": 2,
    "on_store_resolve": 2,
    "on_commit": 2,
    "on_recovery": 1,
    "on_squash": 2,
    "on_invalidation": 4,
    "finalize": 1,
    "collect": 0,
}


class CommitDecision(enum.Enum):
    """What ``on_commit`` wants the pipeline to do with a committing load."""

    OK = "ok"
    REPLAY = "replay"


class CheckScheme:
    """Base scheme: shared stats plumbing and no-op hooks."""

    #: Whether the LQ must be a fully associative CAM (energy model input).
    uses_associative_lq = True
    #: Whether the pipeline must re-execute every load at commit (the
    #: value-based scheme's bandwidth cost).
    reexecutes_loads = False
    name = "base"

    def __init__(self):
        self.stats = CounterSet()
        self.window_instrs = Histogram()
        self.window_loads = Histogram()
        self.window_safe_loads = Histogram()
        self.window_unsafe_stores = Histogram()
        #: Optional scheme-event observer (an
        #: :class:`~repro.obs.recorder.ObservabilityRecorder`).  Emit
        #: sites guard with ``is None`` so observability is zero-cost
        #: when off; the recorder receives filter classifications and
        #: checking-window/table activity as typed events.
        self.obs = None

    # -- execution-time hooks -------------------------------------------
    def on_load_issue(self, load: DynInstr, cycle: int) -> Optional[DynInstr]:
        """A load issued.  May return a younger load to replay from
        (conventional load-load coherence ordering only)."""
        return None

    def on_wrongpath_load(self, age: int, addr: int) -> None:
        """A wrong-path load issued (phantom; will be undone by recovery)."""

    def on_store_resolve(self, store: DynInstr, cycle: int) -> Optional[DynInstr]:
        """A store's address resolved.  May return a premature load to
        replay from (conventional execution-time detection)."""
        return None

    # -- commit-time hooks ------------------------------------------------
    def on_commit(self, instr: DynInstr, cycle: int) -> CommitDecision:
        """An instruction is about to retire (in order)."""
        return CommitDecision.OK

    # -- control-flow repair ----------------------------------------------
    def on_recovery(self, last_kept_seq: int) -> None:
        """Branch misprediction recovery completed."""

    def on_squash(self, last_kept_seq: int, squashed_loads: List[DynInstr]) -> None:
        """A replay squashed everything younger than ``last_kept_seq``."""

    # -- coherence ---------------------------------------------------------
    def on_invalidation(self, line_addr: int, line_bytes: int, cycle: int,
                        oldest_inflight_seq: int) -> None:
        """An external invalidation for ``line_addr`` arrived."""

    # -- observability ------------------------------------------------------
    #: True while a DMDC checking window is open (cycle accounting).  A
    #: plain attribute, not a property: both cycle loops read it every
    #: cycle, and descriptor dispatch is measurable there.  DMDC shadows
    #: it with an instance attribute it flips on activate/terminate.
    checking_active = False

    # -- SoA kernel adapter ------------------------------------------------
    def soa_hooks(self, kernel) -> Optional["SoaHooks"]:
        """Slot-index adapter binding this scheme to a SoA kernel run.

        Returns a fresh :class:`SoaHooks` for ``kernel``, or None when
        this scheme (or this configuration of it) has no slot-array
        transcription — the processor then steps the object path.  The
        base scheme answers None so unknown subclasses stay correct by
        default; see ``docs/performance.md``.
        """
        return None

    def finalize(self, cycle: int) -> None:
        """End-of-run hook (close any open checking window for stats)."""

    def collect(self) -> None:
        """Export component-internal counters into ``self.stats``.

        Called once by the processor when building the result, so the
        energy model can price YLA/bloom/table activity uniformly.
        """


class SoaHooks:
    """Scheme adapter for the SoA cycle kernel (:mod:`repro.sim.soa`).

    The object-path hooks above receive :class:`DynInstr`; the kernel
    instead hands adapters **slot indices** into its parallel arrays, and
    the class-level flags below let it skip the call entirely for events a
    scheme ignores.  Each adapter is a per-run transcription of its
    scheme's hooks: it calls the same component methods (YLA, bloom
    filter, checking table/queue, store sets) and bumps the same
    ``scheme.stats`` names, so a run is bit-identical either way — only
    pure queue-attribute tallies may be batched in locals and folded once
    via :meth:`fold`.

    Commit dispatch is ``commit_mode``: 0 = the scheme never acts at
    commit (the kernel makes no call per retiring instruction); 1 = only
    loads matter (:meth:`on_commit_load`); 2 = windowed checking — the
    kernel calls :meth:`on_commit` whenever ``scheme.checking_active`` or
    the committing instruction is a store flagged unsafe.
    """

    has_load_issue = False
    has_store_resolve = False
    commit_mode = 0
    #: True when :meth:`on_squash` needs the addresses of squashed issued
    #: loads (bloom); collecting them costs a pass the others skip.
    wants_squashed_loads = False

    def __init__(self, scheme: "CheckScheme", kernel) -> None:
        self.scheme = scheme
        self.k = kernel

    def on_load_issue(self, slot: int) -> None:
        """A load issued (called only when ``has_load_issue``)."""

    def on_store_resolve(self, slot: int) -> int:
        """A store's address resolved; return a victim load slot or -1
        (called only when ``has_store_resolve``)."""
        return -1

    def on_commit_load(self, slot: int) -> bool:
        """Commit-time check for a load; True = replay (``commit_mode`` 1)."""
        return False

    def on_commit(self, slot: int, cycle: int) -> bool:
        """Commit-time check for any instruction; True = replay the head
        (``commit_mode`` 2)."""
        return False

    def on_squash(self, last_kept_seq: int, squashed_load_addrs: List[int]) -> None:
        """A replay squashed everything younger than ``last_kept_seq``.

        The default delegates to the scheme's object-path hook with no
        load list — correct for every scheme that only uses the boundary
        age (YLA/DMDC rollback, store-set repair); adapters that need the
        squashed loads themselves override this and set
        ``wants_squashed_loads``.
        """
        self.scheme.on_squash(last_kept_seq, ())

    def fold(self) -> None:
        """Flush locally batched tallies back onto scheme/queue objects
        (called once, after the kernel's cycle loop finishes)."""
