"""Interface between the pipeline and a dependence-checking scheme.

The pipeline owns the machinery every design shares (speculative load
issue, SQ forwarding/rejection, squash, commit order); a scheme only
decides *how premature loads are detected*.  The hooks mirror the
micro-architectural events of the paper:

=====================  ====================================================
hook                   corresponds to
=====================  ====================================================
``on_load_issue``      load executes: YLA update / BF insert / hash-key
                       record; conventional coherence load-load check
``on_store_resolve``   store address resolves: conventional LQ search, or
                       filtering, or DMDC safe/unsafe classification
``on_commit``          in-order retirement: DMDC marking, checking mode,
                       window termination
``on_recovery``        branch misprediction recovery (YLA reset remedy)
``on_squash``          replay squash (same repair plus BF bookkeeping)
``on_invalidation``    external coherence invalidation
=====================  ====================================================

``on_store_resolve``/``on_load_issue`` may return a load to replay *now*
(execution-time detection); ``on_commit`` may decide the committing load
itself must replay (DMDC's commit-time detection).
"""

import enum
from typing import List, Optional

from repro.backend.dyninst import DynInstr
from repro.stats.counters import CounterSet, Histogram

#: The scheme protocol, by name -> number of arguments after ``self``.
#: This is the single source of truth the ``repro check`` lint pass
#: (rule REPRO007) validates scheme classes against: a subclass defining a
#: hook-shaped method that is *not* listed here (e.g. ``on_comit``) would
#: silently never be called by the pipeline.
PROTOCOL_HOOKS = {
    "on_load_issue": 2,
    "on_wrongpath_load": 2,
    "on_store_resolve": 2,
    "on_commit": 2,
    "on_recovery": 1,
    "on_squash": 2,
    "on_invalidation": 4,
    "finalize": 1,
    "collect": 0,
}


class CommitDecision(enum.Enum):
    """What ``on_commit`` wants the pipeline to do with a committing load."""

    OK = "ok"
    REPLAY = "replay"


class CheckScheme:
    """Base scheme: shared stats plumbing and no-op hooks."""

    #: Whether the LQ must be a fully associative CAM (energy model input).
    uses_associative_lq = True
    #: Whether the pipeline must re-execute every load at commit (the
    #: value-based scheme's bandwidth cost).
    reexecutes_loads = False
    name = "base"

    def __init__(self):
        self.stats = CounterSet()
        self.window_instrs = Histogram()
        self.window_loads = Histogram()
        self.window_safe_loads = Histogram()
        self.window_unsafe_stores = Histogram()
        #: Optional scheme-event observer (an
        #: :class:`~repro.obs.recorder.ObservabilityRecorder`).  Emit
        #: sites guard with ``is None`` so observability is zero-cost
        #: when off; the recorder receives filter classifications and
        #: checking-window/table activity as typed events.
        self.obs = None

    # -- execution-time hooks -------------------------------------------
    def on_load_issue(self, load: DynInstr, cycle: int) -> Optional[DynInstr]:
        """A load issued.  May return a younger load to replay from
        (conventional load-load coherence ordering only)."""
        return None

    def on_wrongpath_load(self, age: int, addr: int) -> None:
        """A wrong-path load issued (phantom; will be undone by recovery)."""

    def on_store_resolve(self, store: DynInstr, cycle: int) -> Optional[DynInstr]:
        """A store's address resolved.  May return a premature load to
        replay from (conventional execution-time detection)."""
        return None

    # -- commit-time hooks ------------------------------------------------
    def on_commit(self, instr: DynInstr, cycle: int) -> CommitDecision:
        """An instruction is about to retire (in order)."""
        return CommitDecision.OK

    # -- control-flow repair ----------------------------------------------
    def on_recovery(self, last_kept_seq: int) -> None:
        """Branch misprediction recovery completed."""

    def on_squash(self, last_kept_seq: int, squashed_loads: List[DynInstr]) -> None:
        """A replay squashed everything younger than ``last_kept_seq``."""

    # -- coherence ---------------------------------------------------------
    def on_invalidation(self, line_addr: int, line_bytes: int, cycle: int,
                        oldest_inflight_seq: int) -> None:
        """An external invalidation for ``line_addr`` arrived."""

    # -- observability ------------------------------------------------------
    @property
    def checking_active(self) -> bool:
        """True while a DMDC checking window is open (cycle accounting)."""
        return False

    def finalize(self, cycle: int) -> None:
        """End-of-run hook (close any open checking window for stats)."""

    def collect(self) -> None:
        """Export component-internal counters into ``self.stats``.

        Called once by the processor when building the result, so the
        energy model can price YLA/bloom/table activity uniformly.
        """
