"""The documented advanced surface of ``repro.api``.

Everything here is supported but sharp-edged: direct pipeline access,
hand-built traces, and the engine plumbing most callers never need.
The main facade re-exports these names with a :class:`DeprecationWarning`
(they used to live in ``repro.api`` proper); import them from here.

* :class:`Trace`, :class:`MicroOp`, :class:`InstrClass` — hand-built
  instruction streams for :func:`simulate_trace`;
* :class:`Processor` — the cycle-level pipeline itself;
* :func:`small_config` — the deliberately tiny test machine;
* :class:`RunRequest`, :class:`ExecutionEngine`, :class:`EngineOptions`,
  :func:`get_engine`, :func:`use_engine` — the shared execution engine
  (see ``docs/simulator.md``).
"""

from typing import Optional, Union

from repro.exec import (
    EngineOptions,
    ExecutionEngine,
    RunRequest,
    get_engine,
    use_engine,
)
from repro.isa.instruction import MicroOp
from repro.isa.opcodes import InstrClass
from repro.isa.trace import Trace
from repro.sim.config import MachineConfig, SchemeConfig, small_config
from repro.sim.processor import Processor
from repro.sim.result import SimulationResult

__all__ = [
    "EngineOptions",
    "ExecutionEngine",
    "InstrClass",
    "MicroOp",
    "Processor",
    "RunRequest",
    "Trace",
    "get_engine",
    "simulate_trace",
    "small_config",
    "use_engine",
]


def simulate_trace(trace: Trace,
                   scheme: Union[str, SchemeConfig] = "conventional",
                   config: Optional[MachineConfig] = None,
                   *,
                   instructions: Optional[int] = None,
                   seed: int = 1) -> SimulationResult:
    """Run a hand-built :class:`Trace` directly on the pipeline.

    Trace-level runs bypass the engine/cache (a hand-built trace has no
    canonical content address) — for the cached path, define a
    :class:`~repro.workloads.WorkloadSpec` and use :func:`repro.api.run`.
    """
    if isinstance(scheme, str):
        scheme = SchemeConfig.from_label(scheme)
    machine = (config if config is not None
               else small_config(wrongpath_loads=False)).with_scheme(scheme)
    processor = Processor(machine, trace, seed=seed)
    return processor.run(instructions if instructions is not None else len(trace))
