"""The stable public facade of the DMDC reproduction.

``repro.api`` is the supported surface for scripts, notebooks, and the
``examples/`` directory: five verbs plus the vocabulary types they
speak.  Everything here runs through the shared execution engine, so
repeated design points are deduplicated and served from the
content-addressed result cache exactly like experiment sweeps and
service traffic.

    from repro import api

    result = api.run("gzip", scheme="dmdc-local", instructions=10_000)
    grid = api.sweep(["gzip", "mcf"], schemes=["conventional", "dmdc"])
    print(grid.table())          # scheme x workload IPC pivot
    print(grid.stats)            # cache/dedup accounting
    report = api.compare("mcf", scheme="dmdc")
    print(report.table())

``sweep`` also takes a declarative :class:`~repro.sweeps.GridSpec`
directly — the same object the ``repro sweep`` autopilot and the HTTP
service execute (one point codec across all three; see
``docs/sweeps.md``)::

    from repro.sweeps import GridSpec

    grid = api.sweep(GridSpec(
        axes={"scheme": ["dmdc"], "table": [512, 2048], "workload": ["gzip"]},
        base={"instructions": 8_000}))

Advanced internals (hand-built traces, direct pipeline access, engine
plumbing) live in :mod:`repro.api.advanced`; the old top-level aliases
still resolve but raise :class:`DeprecationWarning`.

Verbs:

* :func:`run` — one design point -> :class:`SimulationResult`;
* :func:`sweep` — a design-space grid in one deduplicated batch ->
  :class:`SweepResult`;
* :func:`compare` — candidate vs baseline with the paper's energy verdict;
* :func:`check` — the correctness tooling (lint + sanitizer) as data;
* :func:`profile` — one design point with full observability attached
  (cycle/structure attribution, replay sites, timeline); always
  simulates — the event stream is a per-run observation, not a cacheable
  result (see ``docs/observability.md``).
"""

import warnings
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.analysis import (
    SCHEME_MATRIX,
    compare_results,
    per_workload_table,
    speedup_summary,
)
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.errors import ConfigError, ReproError, SimulationError
from repro.exec import RunRequest as _RunRequest
from repro.exec import get_engine as _get_engine
from repro.sim.config import (
    CONFIG1,
    CONFIG2,
    CONFIG3,
    SCHEME_LABELS,
    MachineConfig,
    SchemeConfig,
    scheme_matrix,
)
from repro.sim.result import SimulationResult
from repro.sim.runner import instruction_budget as _instruction_budget
from repro.stats.report import format_table
from repro.sweeps.grid import GridExpansion, GridSpec
from repro.sweeps.points import NAMED_CONFIGS
from repro.sweeps.result import SweepResult
from repro.workloads import SUITE, SyntheticWorkload, WorkloadSpec, get_workload

__all__ = [
    # the verbs
    "run", "sweep", "compare", "check", "profile",
    # structured results
    "CompareReport", "SweepResult", "GridSpec",
    # vocabulary types and helpers (stable re-exports)
    "CONFIG1", "CONFIG2", "CONFIG3", "NAMED_CONFIGS",
    "MachineConfig", "SchemeConfig", "SCHEME_LABELS", "scheme_matrix",
    "SCHEME_MATRIX", "SimulationResult",
    "EnergyModel", "EnergyBreakdown",
    "SUITE", "SyntheticWorkload", "WorkloadSpec", "get_workload",
    "format_table", "per_workload_table", "speedup_summary", "compare_results",
    "ConfigError", "ReproError", "SimulationError",
    # the documented sharp-edged surface
    "advanced",
]

#: Names that used to live here and now live in :mod:`repro.api.advanced`.
#: Resolved lazily with a deprecation warning so old imports keep working.
_MOVED_TO_ADVANCED = (
    "EngineOptions", "ExecutionEngine", "InstrClass", "MicroOp",
    "Processor", "RunRequest", "Trace", "get_engine", "simulate_trace",
    "small_config", "use_engine",
)

SchemeLike = Union[str, SchemeConfig]
ConfigLike = Union[str, MachineConfig]
WorkloadLike = Union[str, WorkloadSpec, SyntheticWorkload]


def __getattr__(name: str) -> Any:
    if name in _MOVED_TO_ADVANCED:
        warnings.warn(
            f"repro.api.{name} has moved to repro.api.advanced."
            f"{name}; the repro.api alias will be removed",
            DeprecationWarning, stacklevel=2)
        from repro.api import advanced as _advanced
        return getattr(_advanced, name)
    raise AttributeError(f"module 'repro.api' has no attribute {name!r}")


# -- coercion ------------------------------------------------------------
def _as_scheme(scheme: SchemeLike) -> SchemeConfig:
    if isinstance(scheme, SchemeConfig):
        return scheme
    return SchemeConfig.from_label(scheme)


def _as_machine(config: ConfigLike, scheme: SchemeLike,
                overrides: Optional[Dict] = None) -> MachineConfig:
    if isinstance(config, str):
        if config not in NAMED_CONFIGS:
            raise ConfigError(
                f"unknown config {config!r}; choices: {sorted(NAMED_CONFIGS)}")
        machine = NAMED_CONFIGS[config]
    else:
        machine = config
    machine = machine.with_scheme(_as_scheme(scheme))
    if overrides:
        machine = machine.with_overrides(**overrides)
    return machine


def _as_workload(workload: WorkloadLike) -> Union[str, WorkloadSpec]:
    if isinstance(workload, SyntheticWorkload):
        return workload.spec
    if isinstance(workload, str):
        get_workload(workload)  # validate the name eagerly
    return workload


def _workload_name(workload: WorkloadLike) -> str:
    if isinstance(workload, str):
        return workload
    if isinstance(workload, SyntheticWorkload):
        return workload.spec.name
    return workload.name


def _scheme_label(scheme: SchemeLike) -> str:
    return scheme if isinstance(scheme, str) else scheme.label()


# -- the verbs -----------------------------------------------------------
def run(workload: WorkloadLike,
        scheme: SchemeLike = "conventional",
        config: ConfigLike = "config2",
        *,
        instructions: Optional[int] = None,
        seed: int = 1,
        overrides: Optional[Dict] = None) -> SimulationResult:
    """Simulate one design point through the shared (caching) engine.

    ``workload`` is a suite name, a :class:`WorkloadSpec`, or a
    :class:`SyntheticWorkload`; ``scheme`` a canonical label (e.g.
    ``"dmdc-local"``) or a :class:`SchemeConfig`; ``config`` a named
    machine (``"config1"``..``"config3"``) or a :class:`MachineConfig`.
    ``overrides`` patches machine fields (e.g. ``{"lq_size": 48}``).
    """
    budget = instructions if instructions is not None else _instruction_budget()
    request = _RunRequest(_as_machine(config, scheme, overrides),
                          _as_workload(workload), budget, seed)
    return _get_engine().run([request])[0]


def sweep(workloads: Union[GridSpec, GridExpansion, Iterable[WorkloadLike]],
          schemes: Sequence[SchemeLike] = ("conventional", "dmdc"),
          config: ConfigLike = "config2",
          *,
          instructions: Optional[int] = None,
          seed: int = 1,
          overrides: Optional[Dict] = None,
          baseline: Optional[str] = None) -> SweepResult:
    """A design-space grid, planned as **one** engine batch.

    Takes either a declarative :class:`~repro.sweeps.GridSpec` (the same
    object ``repro sweep`` and the service execute) or the historical
    kwargs form ``sweep(workloads, schemes=..., ...)`` — the kwargs are a
    thin shim over :meth:`GridSpec.from_kwargs`, so both vocabularies
    normalize through one point codec and produce identical design
    points.

    Returns a :class:`SweepResult`: ``result[label][workload]`` as
    before, plus ``result[label, workload]``, ``result.table()``, and
    ``result.stats`` (cache/dedup accounting for this batch).
    """
    if isinstance(workloads, GridExpansion):
        expansion = workloads
    else:
        if isinstance(workloads, GridSpec):
            spec = workloads
        else:
            spec = GridSpec.from_kwargs(
                list(workloads), schemes, config,
                instructions=instructions, seed=seed, overrides=overrides,
                baseline=baseline)
        expansion = spec.expand()

    engine = _get_engine()
    stats = engine.stats
    before = (stats.memo_hits, stats.disk_hits, stats.executed)
    results = engine.run(expansion.requests)
    after = (stats.memo_hits, stats.disk_hits, stats.executed)

    grid: Dict[str, Dict[str, SimulationResult]] = {}
    for point, result in zip(expansion.points, results):
        workload = point["workload"]
        name = workload if isinstance(workload, str) else workload["name"]
        grid.setdefault(point["scheme"], {})[name] = result
    unique = len(expansion)
    executed = after[2] - before[2]
    return SweepResult(grid, list(expansion.points), {
        "requested": expansion.raw_points,
        "excluded": expansion.excluded,
        "collapsed": expansion.collapsed,
        "unique": unique,
        "memo_hits": after[0] - before[0],
        "disk_hits": after[1] - before[1],
        "executed": executed,
        "hit_rate": (unique - executed) / unique if unique else 1.0,
    })


@dataclass
class CompareReport:
    """Baseline vs candidate on one workload, with the energy verdict."""

    baseline: SimulationResult
    candidate: SimulationResult
    energy_baseline: EnergyBreakdown
    energy_candidate: EnergyBreakdown

    @property
    def lq_savings(self) -> float:
        """Fractional LQ energy saved by the candidate scheme."""
        if not self.energy_baseline.lq:
            return 0.0
        return 1 - self.energy_candidate.lq / self.energy_baseline.lq

    @property
    def net_savings(self) -> float:
        if not self.energy_baseline.total:
            return 0.0
        return 1 - self.energy_candidate.total / self.energy_baseline.total

    @property
    def slowdown(self) -> float:
        """Cycle overhead of the candidate (positive = slower)."""
        if not self.baseline.cycles:
            return 0.0
        return self.candidate.cycles / self.baseline.cycles - 1

    def table(self) -> str:
        base, cand = self.baseline, self.candidate
        rows = [
            ["IPC", f"{base.ipc:.3f}", f"{cand.ipc:.3f}"],
            ["LQ searches", base.counters["lq.searches_assoc"],
             cand.counters["lq.searches_assoc"]],
            ["replays", base.counters["replays"], cand.counters["replays"]],
            ["LQ energy", f"{self.energy_baseline.lq:.0f}",
             f"{self.energy_candidate.lq:.0f}"],
            ["total energy", f"{self.energy_baseline.total:.0f}",
             f"{self.energy_candidate.total:.0f}"],
        ]
        return format_table(["metric", base.scheme_name, cand.scheme_name], rows)

    def verdict(self) -> str:
        return (f"LQ savings {self.lq_savings:.1%}, "
                f"net {self.net_savings:.1%}, "
                f"slowdown {self.slowdown:+.2%}")


def compare(workload: WorkloadLike,
            scheme: SchemeLike = "dmdc",
            baseline: SchemeLike = "conventional",
            config: ConfigLike = "config2",
            *,
            instructions: Optional[int] = None,
            seed: int = 1,
            overrides: Optional[Dict] = None) -> CompareReport:
    """Run ``baseline`` and ``scheme`` side by side on one workload."""
    grid = sweep([workload], schemes=[baseline, scheme], config=config,
                 instructions=instructions, seed=seed, overrides=overrides)
    name = _workload_name(workload)
    base = grid[_scheme_label(baseline)][name]
    cand = grid[_scheme_label(scheme)][name]
    machine = _as_machine(config, baseline, overrides)
    model = EnergyModel(machine)
    return CompareReport(base, cand, model.evaluate(base), model.evaluate(cand))


def check(paths: Optional[Sequence[str]] = None,
          *,
          static: bool = True,
          sanitize: bool = False,
          schemes: Optional[Sequence[str]] = None,
          workloads: Optional[Sequence[str]] = None,
          instructions: int = 6_000,
          config: ConfigLike = "config2",
          seed: int = 1,
          strict: bool = False) -> Dict[str, object]:
    """The correctness tooling as data (see ``docs/correctness.md``).

    Returns ``{"ok": bool, "static": [violations...],
    "sanitize": [reports...]}`` with only the halves that were requested.
    """
    payload: Dict[str, object] = {}
    ok = True
    if static:
        from repro.analysis.lint import lint_paths
        violations = lint_paths(list(paths) if paths else ["src"])
        payload["static"] = [v._asdict() for v in violations]
        ok = ok and not violations
    if sanitize:
        from repro.analysis.sanitizer import run_sanitized
        machine = _as_machine(config, "conventional")
        labels = list(schemes) if schemes else sorted(SCHEME_MATRIX)
        names = list(workloads) if workloads else ["gzip", "mcf"]
        reports = []
        for name in names:
            trace = get_workload(name).generate(instructions + 2_000)
            for label in labels:
                scheme_cfg = SCHEME_MATRIX.get(label)
                if scheme_cfg is None:
                    raise ConfigError(
                        f"unknown sanitizer scheme {label!r}; choices: "
                        f"{sorted(SCHEME_MATRIX)}")
                _, report = run_sanitized(
                    machine.with_scheme(scheme_cfg), trace,
                    max_instructions=instructions, seed=seed, strict=strict)
                entry = report.as_dict()
                entry.update(workload=name, label=label)
                reports.append(entry)
                ok = ok and report.clean
        payload["sanitize"] = reports
    payload["ok"] = ok
    return payload


def profile(workload: WorkloadLike,
            scheme: SchemeLike = "dmdc",
            config: ConfigLike = "config2",
            *,
            instructions: Optional[int] = None,
            seed: int = 1,
            overrides: Optional[Dict] = None,
            ring_capacity: int = 4096,
            jsonl_path: Optional[str] = None,
            timeline_capacity: int = 256):
    """Simulate one design point with the observability layer attached.

    Returns a :class:`repro.obs.ProfileReport` bundling the (bit-identical)
    :class:`SimulationResult`, the per-structure/per-stage attribution with
    its counter reconciliation, and the recorder itself (event ring,
    replay sites, timeline).  Unlike :func:`run` this always simulates —
    the event stream is a per-run observation, not a cacheable artefact.
    ``jsonl_path`` additionally streams every event to disk as JSONL.
    """
    from repro.obs.profile import profile_workload
    machine = _as_machine(config, scheme, overrides)
    budget = instructions if instructions is not None else _instruction_budget()
    spec = _as_workload(workload)
    source = get_workload(spec) if isinstance(spec, str) else SyntheticWorkload(spec)
    return profile_workload(machine, source, instructions=budget, seed=seed,
                            ring_capacity=ring_capacity, jsonl_path=jsonl_path,
                            timeline_capacity=timeline_capacity)


from repro.api import advanced  # noqa: E402  (documented submodule surface)
