"""Deterministic random number generation.

Every stochastic element of the reproduction (workload generation,
invalidation injection, wrong-path address synthesis) draws from a
:class:`DeterministicRng` seeded from an experiment-level seed plus a
purpose string, so results are bit-reproducible across runs and immune to
iteration-order changes elsewhere in the code.
"""

import random
import zlib


class DeterministicRng:
    """A seeded PRNG namespaced by purpose.

    Two instances created with the same ``(seed, purpose)`` produce the same
    stream; different purposes decorrelate streams even under equal seeds.
    """

    def __init__(self, seed: int, purpose: str = ""):
        self.seed = seed
        self.purpose = purpose
        mixed = (seed & 0xFFFFFFFF) ^ zlib.crc32(purpose.encode("utf-8"))
        self._rng = random.Random(mixed)

    def child(self, purpose: str) -> "DeterministicRng":
        """Derive an independent stream for a sub-component."""
        return DeterministicRng(self._rng.randrange(1 << 30) ^ self.seed, purpose)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]`` inclusive."""
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._rng.random()

    def choice(self, seq):
        """Uniform choice from a non-empty sequence."""
        return self._rng.choice(seq)

    def choices(self, seq, weights, k=1):
        """Weighted choice with replacement."""
        return self._rng.choices(seq, weights=weights, k=k)

    def geometric(self, p: float) -> int:
        """Number of failures before the first success (support ``0, 1, ...``)."""
        count = 0
        while self._rng.random() >= p:
            count += 1
            if count > 10_000:  # guard against p ~ 0
                break
        return count

    def shuffle(self, seq) -> None:
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(seq)

    def expovariate(self, lambd: float) -> float:
        """Exponential variate with rate ``lambd``."""
        return self._rng.expovariate(lambd)
