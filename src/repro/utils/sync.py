"""Synchronization seam: labelled locks and lock-discipline markers.

The service layer is the only concurrent part of the repository, and its
deadlock-freedom rests on invariants (a fixed lock hierarchy, ascending
shard-order admission, lock-held helper conventions) that
``repro check --concurrency`` verifies statically and the
:class:`repro.analysis.conc.witness.LockOrderWitness` verifies at
runtime.  Both need a seam:

* :func:`make_lock` is how the service layer constructs every lock.  By
  default it returns a plain :class:`threading.Lock`; while a witness
  factory is installed (:func:`install_lock_factory`), it returns an
  instrumented lock that records the runtime acquisition graph.  The
  ``label`` is the lock's *static identity* — ``"Class.attr"``, matching
  the name the static analyzer derives — and ``index`` distinguishes
  instances of the same label that carry an ordering contract (shard
  locks must be taken in ascending ``index`` order).

  Conditions need no seam of their own: ``threading.Condition(lock)``
  built over a seam lock shares its instrumentation.

* :func:`holds` marks a method whose **caller must already hold** the
  named lock attributes.  It is a runtime no-op; the static analyzer
  reads the decorator to seed the method's held-lock set (REPRO009) and
  to know the method does not re-acquire (REPRO008).

Nothing here imports the analysis package — the dependency points the
other way (analysis instruments this seam), so the service layer stays
free of tooling imports.
"""

import threading
from typing import Any, Callable, Optional, Protocol, TypeVar

_F = TypeVar("_F", bound=Callable[..., Any])


class LockFactory(Protocol):
    """What a witness installs: a factory for labelled lock objects."""

    def lock(self, label: str, index: Optional[int] = None) -> Any:
        """Return a lock-like object (``acquire``/``release``/ctx mgr)."""


#: The installed witness factory, or ``None`` for plain stdlib locks.
_factory: Optional[LockFactory] = None


def make_lock(label: str, index: Optional[int] = None) -> Any:
    """A lock whose static identity is ``label`` (e.g. ``"MicroBatcher._lock"``).

    ``index`` orders same-label instances (shard locks): the runtime
    witness asserts that two same-label locks are only ever nested in
    ascending index order, mirroring the static REPRO008 rule.
    """
    if _factory is None:
        return threading.Lock()
    return _factory.lock(label, index)


def install_lock_factory(factory: LockFactory) -> None:
    """Route subsequent :func:`make_lock` calls through ``factory``.

    Only locks *constructed while installed* are instrumented; existing
    objects keep their plain locks.  Installation is test-scoped — the
    witness uninstalls in a ``finally``.
    """
    global _factory
    if _factory is not None:
        raise RuntimeError("a lock factory is already installed")
    _factory = factory


def uninstall_lock_factory(factory: LockFactory) -> None:
    """Remove ``factory``; no-op safe only for the installed factory."""
    global _factory
    if _factory is not factory:
        raise RuntimeError("that lock factory is not the installed one")
    _factory = None


def holds(*lock_attrs: str) -> Callable[[_F], _F]:
    """Declare that callers of the decorated method hold ``lock_attrs``.

    A lock-held helper (``MicroBatcher.admit`` and friends) touches
    guarded state without taking the lock itself; this marker is the
    machine-readable form of the "caller holds ``admission``" docstring
    convention.  The static analyzer seeds the method's held-lock set
    from it, and flags guarded accesses in *unmarked* lock-free methods.
    """

    def mark(fn: _F) -> _F:
        fn.__repro_holds__ = lock_attrs  # type: ignore[attr-defined]
        return fn

    return mark
