"""A fixed-capacity FIFO ring buffer.

Models age-ordered hardware queues (ROB, LQ, SQ, fetch buffer): allocation
at the tail, retirement at the head, and squash-from-the-tail on recovery.
Entries are arbitrary Python objects; age order is the insertion order.
"""

from typing import Iterator, List, Optional


class RingBuffer:
    """Bounded FIFO with tail-side truncation for squash support."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._items: List = []

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        """Iterate oldest to youngest."""
        return iter(self._items)

    def __getitem__(self, idx):
        return self._items[idx]

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def free(self) -> int:
        return self.capacity - len(self._items)

    def head(self) -> Optional[object]:
        """Oldest entry, or None when empty."""
        return self._items[0] if self._items else None

    def tail(self) -> Optional[object]:
        """Youngest entry, or None when empty."""
        return self._items[-1] if self._items else None

    def push(self, item) -> None:
        """Allocate ``item`` at the tail; raises when full."""
        if self.full:
            raise OverflowError("ring buffer full")
        self._items.append(item)

    def pop(self):
        """Retire and return the oldest entry; raises when empty."""
        if not self._items:
            raise IndexError("ring buffer empty")
        return self._items.pop(0)

    def squash_younger(self, keep) -> List:
        """Drop entries from the tail while ``keep(entry)`` is False.

        Returns the squashed entries (youngest last).  Models recovery: all
        queue entries younger than the recovery point are discarded.
        """
        squashed = []
        while self._items and not keep(self._items[-1]):
            squashed.append(self._items.pop())
        squashed.reverse()
        return squashed

    def clear(self) -> None:
        self._items.clear()
