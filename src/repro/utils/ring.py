"""A fixed-capacity FIFO ring buffer.

Models age-ordered hardware queues (ROB, LQ, SQ, fetch buffer): allocation
at the tail, retirement at the head, and squash-from-the-tail on recovery.
Entries are arbitrary Python objects; age order is the insertion order.

The backing list is exposed as ``items`` so hot-path searches can iterate
or length-check it without a method call; treat it as read-only — all
mutation goes through :meth:`push` / :meth:`pop` / :meth:`squash_younger`.
The list object is stable for the buffer's lifetime (never rebound), so
callers may safely cache a reference to it.
"""

from typing import Iterator, List, Optional


class RingBuffer:
    """Bounded FIFO with tail-side truncation for squash support."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.items: List = []

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator:
        """Iterate oldest to youngest."""
        return iter(self.items)

    def __reversed__(self) -> Iterator:
        """Iterate youngest to oldest without copying the storage.

        Hot-path searches (SQ forwarding) want youngest-first age order;
        this avoids the ``reversed(list(ring))`` allocation per search.
        """
        return reversed(self.items)

    def __getitem__(self, idx):
        return self.items[idx]

    @property
    def full(self) -> bool:
        return len(self.items) >= self.capacity

    @property
    def free(self) -> int:
        return self.capacity - len(self.items)

    def head(self) -> Optional[object]:
        """Oldest entry, or None when empty."""
        return self.items[0] if self.items else None

    def tail(self) -> Optional[object]:
        """Youngest entry, or None when empty."""
        return self.items[-1] if self.items else None

    def push(self, item) -> None:
        """Allocate ``item`` at the tail; raises when full."""
        if len(self.items) >= self.capacity:
            raise OverflowError("ring buffer full")
        self.items.append(item)

    def pop(self):
        """Retire and return the oldest entry; raises when empty."""
        if not self.items:
            raise IndexError("ring buffer empty")
        return self.items.pop(0)

    def squash_younger(self, keep) -> List:
        """Drop entries from the tail while ``keep(entry)`` is False.

        Returns the squashed entries (youngest last).  Models recovery: all
        queue entries younger than the recovery point are discarded.
        """
        squashed = []
        items = self.items
        while items and not keep(items[-1]):
            squashed.append(items.pop())
        squashed.reverse()
        return squashed

    def clear(self) -> None:
        self.items.clear()
