"""Bit-level helpers used by hashing, banking, and address arithmetic.

The paper's hardware structures are all indexed by low-order address bits or
by XOR-folded addresses (the H0 hash family of Sethumadhavan et al.).  These
helpers centralise that arithmetic so every structure hashes identically.
"""

from repro.errors import ConfigError


def is_power_of_two(n: int) -> bool:
    """Return True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2_exact(n: int) -> int:
    """Return ``log2(n)`` for a power of two, else raise :class:`ConfigError`.

    Hardware structures in this model (YLA banks, checking tables, bloom
    filters, caches) must have power-of-two sizes so they can be indexed by
    bit selection.
    """
    if not is_power_of_two(n):
        raise ConfigError(f"size must be a power of two, got {n}")
    return n.bit_length() - 1


def align_down(addr: int, granularity: int) -> int:
    """Align ``addr`` down to a power-of-two ``granularity`` in bytes."""
    return addr & ~(granularity - 1)


def bit_select(value: int, low: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``low``."""
    return (value >> low) & ((1 << width) - 1)


def fold_xor(value: int, width: int, total_bits: int = 40) -> int:
    """XOR-fold ``value`` down to ``width`` bits (the H0 hash of [18]).

    The H0 hashing function partitions the address into ``width``-bit
    chunks and XORs them together.  ``total_bits`` bounds how much of the
    address participates (physical addresses in the modelled machine are
    40 bits wide).
    """
    if width <= 0:
        return 0  # a single-entry table: everything folds to index 0
    value &= (1 << total_bits) - 1
    mask = (1 << width) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= width
    return folded


def overlap(addr_a: int, size_a: int, addr_b: int, size_b: int) -> bool:
    """Return True when byte ranges ``[a, a+size_a)`` and ``[b, b+size_b)`` overlap."""
    return addr_a < addr_b + size_b and addr_b < addr_a + size_a


def contains(addr_outer: int, size_outer: int, addr_inner: int, size_inner: int) -> bool:
    """Return True when the outer byte range fully covers the inner one.

    Store-to-load forwarding is only legal when the store's bytes fully
    cover the load's bytes; partial overlaps force a rejection instead.
    """
    return addr_outer <= addr_inner and addr_inner + size_inner <= addr_outer + size_outer
