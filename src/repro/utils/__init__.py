"""Small generic helpers shared across the simulator."""

from repro.utils.bitops import (
    align_down,
    bit_select,
    fold_xor,
    is_power_of_two,
    log2_exact,
    overlap,
)
from repro.utils.rng import DeterministicRng
from repro.utils.ring import RingBuffer

__all__ = [
    "align_down",
    "bit_select",
    "fold_xor",
    "is_power_of_two",
    "log2_exact",
    "overlap",
    "DeterministicRng",
    "RingBuffer",
]
