"""Load/store queues with forwarding, rejection, and associative search."""

from repro.lsq.queues import ForwardAction, ForwardResult, LoadQueue, StoreQueue

__all__ = ["ForwardAction", "ForwardResult", "LoadQueue", "StoreQueue"]
