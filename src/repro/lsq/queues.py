"""Age-ordered load and store queues.

These model the paper's baseline LSQ (Section 2 and 5):

* loads may issue while older stores still have unresolved addresses
  (speculative issue);
* the SQ forwards from the youngest older store with a resolved, fully
  covering address and ready data;
* a store whose address matches but whose data is not ready — or which only
  partially covers the load — *rejects* the load, which retries later
  (the POWER4-style behaviour the paper assumes);
* a resolving store associatively searches the LQ for younger loads that
  issued prematurely (in the conventional scheme).

The queues themselves are scheme-agnostic; dependence-checking schemes
decide when the associative LQ search actually happens, which is the whole
point of the paper.

Both search methods are on the simulator's hottest path, so they iterate
the ring storage in place (no per-search list copies) and exit as soon as
the outcome can no longer change.  That discipline is machine-enforced:
``repro check --static`` registers both methods in its hot-function
catalogue (rules REPRO004/REPRO005 — no string-keyed counter bumps, no
growable allocations), and the shadow-oracle sanitizer
(:mod:`repro.analysis.sanitizer`) cross-checks every filter/replay
decision built on these searches against an independent associative
oracle; see ``docs/correctness.md``.
"""

import enum
from typing import Dict, NamedTuple, Optional

from repro.backend.dyninst import DynInstr
from repro.utils.ring import RingBuffer


class ForwardAction(enum.Enum):
    """Outcome of a load's SQ search at issue time."""

    CACHE = "cache"      # no conflicting older store: access the D-cache
    FORWARD = "forward"  # youngest older matching store supplies the data
    REJECT = "reject"    # matching store can't forward yet: retry later


class ForwardResult(NamedTuple):
    """Outcome of one forwarding search.

    A NamedTuple, built at most once per load issue attempt; the SoA
    kernel's :func:`sq_forward_search_soa` returns the same three facts as
    a plain tuple of ints and never constructs this type at all.
    """

    action: ForwardAction
    store: Optional[DynInstr]
    #: True when every older store in the SQ had a resolved address, i.e.
    #: the load is provably not a premature load (the paper's *safe load*).
    all_older_resolved: bool


_CACHE = ForwardAction.CACHE
_FORWARD = ForwardAction.FORWARD
_REJECT = ForwardAction.REJECT


class StoreQueue:
    """Age-ordered store queue with forwarding search."""

    def __init__(self, capacity: int):
        self.ring = RingBuffer(capacity)
        self.searches = 0
        self.searches_filtered = 0
        #: seq -> entry index for O(1) lookups by age (forwarding
        #: provenance checks); maintained by allocate/retire/squash.
        self.by_seq: Dict[int, DynInstr] = {}

    def __len__(self) -> int:
        return len(self.ring)

    @property
    def full(self) -> bool:
        return self.ring.full

    def allocate(self, store: DynInstr) -> None:
        self.ring.push(store)
        self.by_seq[store.seq] = store

    def retire_head(self, store: DynInstr) -> None:
        if self.ring.head() is not store:
            raise AssertionError("SQ retired out of order")
        self.ring.pop()
        del self.by_seq[store.seq]

    def squash_younger(self, last_kept_seq: int) -> None:
        for victim in self.ring.squash_younger(lambda s: s.seq <= last_kept_seq):
            del self.by_seq[victim.seq]

    def find(self, seq: int) -> Optional[DynInstr]:
        """The in-flight store with age ``seq``, or None."""
        return self.by_seq.get(seq)

    def search_for_forwarding(self, load: DynInstr, count_search: bool = True) -> ForwardResult:
        """Resolve a load's memory source against all older in-flight stores.

        Scans older stores youngest-first.  The youngest older store with a
        resolved overlapping address decides the outcome; unresolved older
        stores make the load speculative but do not block it.  The scan
        stops early once both facts are settled: an outcome has been found
        and an unresolved older store has been seen.
        """
        if count_search:
            self.searches += 1
        else:
            self.searches_filtered += 1
        load_seq = load.seq
        l_addr = load.addr
        l_end = l_addr + load.size
        all_resolved = True
        action = _CACHE
        match: Optional[DynInstr] = None
        # Byte-range overlap/containment is inlined (see utils.bitops for
        # the reference arithmetic); this loop runs once per issued load.
        for store in reversed(self.ring.items):
            if store.seq >= load_seq:
                continue
            if store.resolve_cycle < 0:
                all_resolved = False
                if match is not None:
                    break
                continue
            if match is None:
                s_addr = store.addr
                if s_addr < l_end and l_addr < s_addr + store.size:
                    match = store
                    if (
                        s_addr <= l_addr
                        and l_end <= s_addr + store.size
                        and store.pending_data == 0
                    ):
                        action = _FORWARD
                    else:
                        action = _REJECT
                    if not all_resolved:
                        break
        return ForwardResult(action, match, all_resolved)

    def oldest_unresolved_seq(self) -> Optional[int]:
        """Age of the oldest store without a resolved address, if any.

        Supports the paper's Section 3 SQ-filtering extension: loads older
        than every in-flight store can skip the SQ search entirely.
        """
        for store in self.ring:
            if store.resolve_cycle < 0:
                return store.seq
        return None


class LoadQueue:
    """Age-ordered load queue.

    In the conventional scheme this is a fully associative CAM searched by
    every resolving store; under DMDC it degenerates into a FIFO of hash
    keys (the search methods are simply never called, and the energy model
    charges the cheaper structure).
    """

    def __init__(self, capacity: int):
        self.ring = RingBuffer(capacity)
        self.searches = 0
        self.searches_filtered = 0
        self.inv_searches = 0

    def __len__(self) -> int:
        return len(self.ring)

    @property
    def full(self) -> bool:
        return self.ring.full

    def allocate(self, load: DynInstr) -> None:
        self.ring.push(load)

    def retire_head(self, load: DynInstr) -> None:
        if self.ring.head() is not load:
            raise AssertionError("LQ retired out of order")
        self.ring.pop()

    def squash_younger(self, last_kept_seq: int) -> None:
        self.ring.squash_younger(lambda l: l.seq <= last_kept_seq)

    def search_younger_issued(self, store: DynInstr, count_search: bool = True) -> Optional[DynInstr]:
        """Conventional violation check: oldest younger load, already issued,
        overlapping the store's bytes.

        Conservative (as in real designs): forwarding provenance is not
        inspected, so a load that forwarded from a younger store still
        matches.  Returns the *oldest* such load — replaying from it covers
        every younger one; the age-ordered scan returns on the first match.
        """
        if count_search:
            self.searches += 1
        else:
            self.searches_filtered += 1
        s_seq = store.seq
        s_addr = store.addr
        s_end = s_addr + store.size
        for load in self.ring.items:
            if load.seq > s_seq and load.issue_cycle >= 0:
                l_addr = load.addr
                if s_addr < l_addr + load.size and l_addr < s_end:
                    return load
        return None


# ======================================================================
# Slot-array search kernels (the SoA cycle loop's LSQ)
# ======================================================================
#
# The SoA kernel (:mod:`repro.sim.soa`) keeps its LQ/SQ as plain lists of
# slot indices into parallel state arrays; these free functions are the
# exact transcriptions of the two searches above over that layout.  They
# return plain ints (action codes, slot indices) and bump no counters —
# the kernel accumulates search counts in locals and folds them into the
# queue objects once per run, so the externally visible totals match the
# object path bit for bit.

#: Integer action codes mirroring :class:`ForwardAction` member for member.
SOA_CACHE = 0
SOA_FORWARD = 1
SOA_REJECT = 2


def sq_forward_search_soa(sq_slots, seq_, addr_, size_, rcyc_, pdata_,
                          load_seq, l_addr, l_end):
    """:meth:`StoreQueue.search_for_forwarding` over slot arrays.

    ``sq_slots`` is the age-ordered list of SQ slot indices; the remaining
    array arguments are the kernel's parallel per-slot state.  Returns
    ``(action, match_slot, all_older_resolved)`` with ``match_slot`` -1
    for no match — the same three facts as :class:`ForwardResult`, with
    the same youngest-first scan and the same early exit.
    """
    all_resolved = True
    action = SOA_CACHE
    match = -1
    for slot in reversed(sq_slots):
        if seq_[slot] >= load_seq:
            continue
        if rcyc_[slot] < 0:
            all_resolved = False
            if match >= 0:
                break
            continue
        if match < 0:
            s_addr = addr_[slot]
            if s_addr < l_end and l_addr < s_addr + size_[slot]:
                match = slot
                if (
                    s_addr <= l_addr
                    and l_end <= s_addr + size_[slot]
                    and pdata_[slot] == 0
                ):
                    action = SOA_FORWARD
                else:
                    action = SOA_REJECT
                if not all_resolved:
                    break
    return action, match, all_resolved


def sq_has_unresolved_soa(sq_slots, rcyc_) -> bool:
    """:meth:`StoreQueue.oldest_unresolved_seq` truth-value over slot arrays
    (the livelock guard only asks *whether* an unresolved store exists)."""
    for slot in sq_slots:
        if rcyc_[slot] < 0:
            return True
    return False


def lq_violation_search_soa(lq_slots, seq_, addr_, size_, icyc_,
                            s_seq, s_addr, s_end) -> int:
    """:meth:`LoadQueue.search_younger_issued` over slot arrays.

    Returns the slot of the oldest younger issued overlapping load, or -1.
    """
    for slot in lq_slots:
        if seq_[slot] > s_seq and icyc_[slot] >= 0:
            l_addr = addr_[slot]
            if s_addr < l_addr + size_[slot] and l_addr < s_end:
                return slot
    return -1
