"""Age-ordered load and store queues.

These model the paper's baseline LSQ (Section 2 and 5):

* loads may issue while older stores still have unresolved addresses
  (speculative issue);
* the SQ forwards from the youngest older store with a resolved, fully
  covering address and ready data;
* a store whose address matches but whose data is not ready — or which only
  partially covers the load — *rejects* the load, which retries later
  (the POWER4-style behaviour the paper assumes);
* a resolving store associatively searches the LQ for younger loads that
  issued prematurely (in the conventional scheme).

The queues themselves are scheme-agnostic; dependence-checking schemes
decide when the associative LQ search actually happens, which is the whole
point of the paper.
"""

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.backend.dyninst import DynInstr
from repro.utils.bitops import contains, overlap
from repro.utils.ring import RingBuffer


class ForwardAction(enum.Enum):
    """Outcome of a load's SQ search at issue time."""

    CACHE = "cache"      # no conflicting older store: access the D-cache
    FORWARD = "forward"  # youngest older matching store supplies the data
    REJECT = "reject"    # matching store can't forward yet: retry later


@dataclass
class ForwardResult:
    action: ForwardAction
    store: Optional[DynInstr]
    #: True when every older store in the SQ had a resolved address, i.e.
    #: the load is provably not a premature load (the paper's *safe load*).
    all_older_resolved: bool


class StoreQueue:
    """Age-ordered store queue with forwarding search."""

    def __init__(self, capacity: int):
        self.ring = RingBuffer(capacity)
        self.searches = 0
        self.searches_filtered = 0

    def __len__(self) -> int:
        return len(self.ring)

    @property
    def full(self) -> bool:
        return self.ring.full

    def allocate(self, store: DynInstr) -> None:
        self.ring.push(store)

    def retire_head(self, store: DynInstr) -> None:
        if self.ring.head() is not store:
            raise AssertionError("SQ retired out of order")
        self.ring.pop()

    def squash_younger(self, last_kept_seq: int) -> None:
        self.ring.squash_younger(lambda s: s.seq <= last_kept_seq)

    def search_for_forwarding(self, load: DynInstr, count_search: bool = True) -> ForwardResult:
        """Resolve a load's memory source against all older in-flight stores.

        Scans older stores youngest-first.  The youngest older store with a
        resolved overlapping address decides the outcome; unresolved older
        stores make the load speculative but do not block it.
        """
        if count_search:
            self.searches += 1
        else:
            self.searches_filtered += 1
        all_resolved = True
        decision: Optional[ForwardResult] = None
        for store in reversed(list(self.ring)):
            if store.seq >= load.seq:
                continue
            if not store.resolved:
                all_resolved = False
                continue
            if decision is None and overlap(store.addr, store.size, load.addr, load.size):
                if contains(store.addr, store.size, load.addr, load.size) and store.pending_data == 0:
                    decision = ForwardResult(ForwardAction.FORWARD, store, True)
                else:
                    decision = ForwardResult(ForwardAction.REJECT, store, True)
        if decision is None:
            decision = ForwardResult(ForwardAction.CACHE, None, True)
        decision.all_older_resolved = all_resolved
        return decision

    def oldest_unresolved_seq(self) -> Optional[int]:
        """Age of the oldest store without a resolved address, if any.

        Supports the paper's Section 3 SQ-filtering extension: loads older
        than every in-flight store can skip the SQ search entirely.
        """
        for store in self.ring:
            if not store.resolved:
                return store.seq
        return None

    def oldest_seq(self) -> Optional[int]:
        head = self.ring.head()
        return head.seq if head is not None else None


class LoadQueue:
    """Age-ordered load queue.

    In the conventional scheme this is a fully associative CAM searched by
    every resolving store; under DMDC it degenerates into a FIFO of hash
    keys (the search methods are simply never called, and the energy model
    charges the cheaper structure).
    """

    def __init__(self, capacity: int):
        self.ring = RingBuffer(capacity)
        self.searches = 0
        self.searches_filtered = 0
        self.inv_searches = 0

    def __len__(self) -> int:
        return len(self.ring)

    @property
    def full(self) -> bool:
        return self.ring.full

    def allocate(self, load: DynInstr) -> None:
        self.ring.push(load)

    def retire_head(self, load: DynInstr) -> None:
        if self.ring.head() is not load:
            raise AssertionError("LQ retired out of order")
        self.ring.pop()

    def squash_younger(self, last_kept_seq: int) -> None:
        self.ring.squash_younger(lambda l: l.seq <= last_kept_seq)

    def search_younger_issued(self, store: DynInstr, count_search: bool = True) -> Optional[DynInstr]:
        """Conventional violation check: oldest younger load, already issued,
        overlapping the store's bytes.

        Conservative (as in real designs): forwarding provenance is not
        inspected, so a load that forwarded from a younger store still
        matches.  Returns the *oldest* such load — replaying from it covers
        every younger one.
        """
        if count_search:
            self.searches += 1
        else:
            self.searches_filtered += 1
        for load in self.ring:
            if (
                load.seq > store.seq
                and load.issue_cycle >= 0
                and overlap(store.addr, store.size, load.addr, load.size)
            ):
                return load
        return None

    def issued_loads(self) -> List[DynInstr]:
        """All loads that have issued (for the ground-truth checker)."""
        return [l for l in self.ring if l.issue_cycle >= 0]
